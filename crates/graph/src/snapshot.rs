//! Incremental snapshots for evolving graphs (paper §3.2.1, Fig. 5).
//!
//! Graph updates are only visible to jobs submitted after them, so the store
//! keeps a series of timestamped snapshots.  Because each update touches few
//! partitions, a snapshot records only the re-versioned partitions; all
//! other partitions are inherited, which is exactly what lets jobs bound to
//! different snapshots keep *sharing* the unchanged structure partitions in
//! cache (the effect Figs. 16–19 measure).
//!
//! # Layered delta chains
//!
//! Records are *layered*: each [`SnapshotRecord`] (vertex level) and
//! `ShardRecord` (partition level) stores only the entries **its** delta
//! touched, so writing a record costs O(|delta|) however long the chain
//! grows — never O(accumulated state).  (Checkpoint stamping, when a
//! policy schedules one, additionally clones the accumulated overrides;
//! see [`CompactionPolicy`].)  Three resolution regimes follow:
//!
//! - **Latest view**: the store maintains one incrementally updated
//!   current-state index, so every lookup at the newest snapshot is a
//!   single hash probe — O(1) in chain length.
//! - **Historical view**: a lookup walks its chain backwards (newest
//!   record first) until it finds the key or hits a *checkpoint* — a
//!   record onto which the full cumulative state has been materialized.
//! - **Base view**: resolves straight against the base [`PartitionSet`].
//!
//! [`CompactionPolicy`] bounds the historical walk: `EveryK(k)` (the
//! default, k = 16) materializes a checkpoint every `k` applied deltas,
//! capping any walk at `2k - 1` records; `Off` disables auto-compaction
//! (a manual [`ShardedSnapshotStore::compact`] is still available).
//! Layering and compaction are pure representation: they never change
//! what any view observes.
//!
//! # Placement, capacity, and concurrency
//!
//! Three knobs turn the sharded store into a genuinely multi-node-shaped
//! store.  All three default off and none of them ever changes what a
//! view observes — placement moves chains between shards, capacity moves
//! cold records to (modeled) spill storage, and concurrent apply only
//! reorders *internal* work:
//!
//! - **Placement** ([`ShardPlacement`], default `RoundRobin`): how
//!   partitions are assigned to shards, and therefore which stage-one
//!   I/O lane a partition load occupies.  `Locality` is a greedy
//!   co-access placer: fed observed job footprints (a
//!   [`PlacementStats`], e.g. the engine's slot planner or a
//!   [`FootprintProfile`]), it groups partitions that the same jobs
//!   co-access onto the same shard — in a multi-node deployment that
//!   keeps each job's traffic on its home node.
//! - **Capacity** ([`ShardCapacity`], default unlimited): a per-shard
//!   `max_resident_bytes` budget on the chain's resident state,
//!   enforced at install time by *checkpoint-aware spill*: the coldest
//!   records strictly below the shard's newest checkpoint — old
//!   deltas and superseded checkpoints alike — have their payloads
//!   marked spilled, oldest first, skipping records whose payloads the
//!   permanently resident tail (the newest checkpoint record and
//!   everything after it, the state every future walk must reach)
//!   still shares.  Spilled data stays materializable (this is a
//!   single-process reproduction) so no historical view can ever
//!   dangle, but it leaves the resident accounting
//!   ([`ShardedSnapshotStore::override_bytes`] /
//!   [`ShardedSnapshotStore::shard_resident_bytes`]) and any view that
//!   resolves a partition through a spilled record reports it via
//!   [`GraphView::partition_spilled`], which the engines price as a
//!   disk re-fetch on the owning shard's lane (the spill signal).
//! - **Concurrent apply** ([`ShardedSnapshotStore::with_apply_workers`],
//!   default 1 = the serial path): partition rebuilds — pure,
//!   lock-free reads of the pre-delta state — fan out on scoped worker
//!   threads claiming partitions from a shared cursor.  The whole
//!   rebuild path is lock-free: each worker stacks its results in a
//!   local vector and the main thread merges the pid-tagged results
//!   after the scope joins.  Deltas whose estimated rebuild work is
//!   too small to amortize a thread spawn stay serial
//!   ([`ShardedSnapshotStore::with_apply_threshold`], default
//!   [`DEFAULT_APPLY_EDGES_PER_WORKER`] edges per worker; `0` removes
//!   the clamp for the differential suites).  The vertex-level
//!   current-index merge stays single-threaded and ordered, so the
//!   result is **bit-identical** to the serial apply at any worker
//!   count (pinned by `tests/store_stress.rs` and the
//!   `placement_is_transparent` proptest).
//!
//! # Durability
//!
//! A store becomes durable via [`ShardedSnapshotStore::persist_to`]:
//! every apply then appends CRC-checksummed frames to the [`crate::wal`]
//! segment files *before* mutating memory, and
//! [`ShardedSnapshotStore::open`] / [`ShardedSnapshotStore::recover`]
//! rebuild the store — records, checkpoints, spill flags, and the
//! incremental [`CurrentIndex`] — by replaying them.  Recovery truncates
//! a torn tail (a crash mid-append) and refuses mid-log corruption with
//! a typed [`StoreError`].  On a durable store, capacity spill is *real*:
//! spilled payloads are dropped from memory and reads through them
//! rehydrate from the shard segment (read-through), so the modeled spill
//! cost can be compared against measured disk time.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::edge::{Edge, EdgeList};
use crate::fault::{FaultHandle, FaultInjector, StoreFaultBoundary};
use crate::obs::{ObsHandle, StoreObserver};
use crate::partition::{Partition, PartitionSet};
use crate::types::{PartitionId, VersionId, VertexId, NO_PARTITION};
use crate::wal::{
    self, scan_segment, Frame, FrameCursor, FrameHead, PayloadLoc, SegmentId, StoreError, StoreWal,
    WireReader,
};

/// A batch of edge additions and removals forming one graph update.
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// Edges to add.
    pub additions: Vec<Edge>,
    /// `(src, dst)` pairs to remove (first matching edge).
    pub removals: Vec<(VertexId, VertexId)>,
}

impl GraphDelta {
    /// A delta that only adds edges.
    pub fn adding<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        GraphDelta { additions: edges.into_iter().collect(), removals: Vec::new() }
    }

    /// A delta that only removes edges.
    pub fn removing<I: IntoIterator<Item = (VertexId, VertexId)>>(pairs: I) -> Self {
        GraphDelta { additions: Vec::new(), removals: pairs.into_iter().collect() }
    }

    /// Total number of edge changes.
    pub fn len(&self) -> usize {
        self.additions.len() + self.removals.len()
    }

    /// Whether the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Errors raised when applying a [`GraphDelta`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A removal referenced an edge not present in the current snapshot.
    EdgeNotFound(VertexId, VertexId),
    /// An addition referenced a vertex outside the fixed universe.
    VertexOutOfRange(VertexId),
    /// Snapshot timestamps must be strictly increasing (and > 0).
    NonMonotonicTimestamp { previous: u64, given: u64 },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::EdgeNotFound(s, d) => write!(f, "edge {s}->{d} not found"),
            SnapshotError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
            SnapshotError::NonMonotonicTimestamp { previous, given } => write!(
                f,
                "timestamp {given} not after previous snapshot {previous}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// When the store materializes checkpoints along the delta chains.
///
/// A checkpoint is the full cumulative state stamped onto an existing
/// record; a historical lookup's backward walk stops at the first one it
/// meets.  Compaction is pure representation — it bounds walk length and
/// never changes what any view observes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// No automatic checkpoints: a historical walk may span the whole
    /// chain.  [`ShardedSnapshotStore::compact`] still works manually.
    Off,
    /// Materialize a checkpoint every `k` applied deltas (`k` is clamped
    /// to at least 1), capping any historical walk at `2k - 1` records.
    /// `EveryK(1)` reproduces the pre-layering cumulative layout: every
    /// record carries full state, at O(accumulated) cost per apply.
    EveryK(usize),
}

impl Default for CompactionPolicy {
    /// Checkpoint every 16 deltas: historical walks touch at most 31
    /// records.  Stamping a checkpoint clones the accumulated override
    /// state `S`, so apply is O(|delta| + S/k) amortized — strictly
    /// O(|delta|) only under [`CompactionPolicy::Off`]; pruning
    /// checkpointed prefixes (true log compaction) is future work.
    fn default() -> Self {
        CompactionPolicy::EveryK(16)
    }
}

impl CompactionPolicy {
    /// Whether a checkpoint is due after `applied` total deltas.
    fn due(self, applied: usize) -> bool {
        match self {
            CompactionPolicy::Off => false,
            CompactionPolicy::EveryK(k) => applied.is_multiple_of(k.max(1)),
        }
    }
}

/// One snapshot's vertex-level **delta**: only the vertices this delta
/// touched, plus the shard chain heads visible at this snapshot.
/// Unchanged vertices resolve through older records or the nearest
/// checkpoint (see the module docs).
#[derive(Debug)]
struct SnapshotRecord {
    timestamp: u64,
    /// Per shard: how many of that shard's records this snapshot sees
    /// (0 = the base).  Partition-level state lives in the shards.
    shard_heads: Vec<usize>,
    master_delta: HashMap<VertexId, PartitionId>,
    replica_delta: HashMap<VertexId, Vec<PartitionId>>,
    degree_delta: HashMap<VertexId, (u32, u32)>,
    /// How many edge *removals* this delta carried.  Persisted with the
    /// record (and through the WAL) because incremental recomputation
    /// needs it: a monotone resume is only sound over addition-only
    /// deltas, so [`ShardedSnapshotStore::delta_summary`] reports any
    /// removal in the resumed range as a from-scratch fallback signal.
    removals: u64,
    /// Full cumulative vertex state as of this record, when compaction
    /// materialized one here.  A backward walk stops at the first
    /// checkpoint it meets.
    checkpoint: Option<VertexCheckpoint>,
}

/// Materialized cumulative vertex-level state (checkpoint payload).
#[derive(Clone, Debug, Default)]
struct VertexCheckpoint {
    master: HashMap<VertexId, PartitionId>,
    replicas: HashMap<VertexId, Vec<PartitionId>>,
    degree: HashMap<VertexId, (u32, u32)>,
}

/// One partition payload of a [`ShardRecord`] or [`ShardCheckpoint`]:
/// resident in memory, on disk (rehydrated on first read), or both.
///
/// In-memory stores always hold the `Arc` and no disk location — every
/// existing code path is unchanged.  On a durable store each payload
/// also records where its bytes live in the owning shard segment, which
/// is what makes two things possible: recovery can leave cold pre-
/// checkpoint payloads *lazy* (decoded only if a historical walk
/// actually reaches them), and capacity spill can genuinely drop the
/// resident copy so later reads do real I/O.
#[derive(Debug, Default)]
struct PayloadCell {
    /// The decoded partition, once resident.  `OnceLock` so a shared
    /// `&self` walk can materialize a lazy payload exactly once.
    part: OnceLock<Arc<Partition>>,
    /// Where the payload's bytes live on disk (durable stores only).
    disk: Option<PayloadLoc>,
}

impl Clone for PayloadCell {
    fn clone(&self) -> Self {
        let part = OnceLock::new();
        if let Some(p) = self.part.get() {
            let _ = part.set(Arc::clone(p));
        }
        PayloadCell { part, disk: self.disk }
    }
}

impl PayloadCell {
    /// A resident, purely in-memory payload.
    fn resident(part: Arc<Partition>) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(part);
        PayloadCell { part: cell, disk: None }
    }

    /// A resident payload that also knows its on-disk location.
    fn resident_at(part: Arc<Partition>, loc: PayloadLoc) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(part);
        PayloadCell { part: cell, disk: Some(loc) }
    }

    /// An on-disk-only payload, decoded on first read.
    fn lazy(loc: PayloadLoc) -> Self {
        PayloadCell { part: OnceLock::new(), disk: Some(loc) }
    }

    /// The resident payload, if materialized (never triggers I/O —
    /// accounting and eviction use this).
    fn get(&self) -> Option<&Arc<Partition>> {
        self.part.get()
    }

    /// The payload, rehydrating from `wal` if not resident.
    ///
    /// # Panics
    ///
    /// Panics if rehydration I/O fails: the view API is infallible by
    /// design, and the frame was CRC-verified when the store opened, so
    /// a failure here means the segment file vanished or the device
    /// died under a live store — not a recoverable application state.
    fn load(&self, wal: Option<&StoreWal>) -> &Arc<Partition> {
        self.part.get_or_init(|| {
            let loc = self.disk.expect("payload neither resident nor on disk");
            let wal = wal.expect("disk-backed payload without an open wal");
            match wal.read_partition(loc) {
                Ok(p) => Arc::new(p),
                Err(e) => panic!("failed to rehydrate spilled partition payload: {e}"),
            }
        })
    }

    /// Drops the resident copy if (and only if) the payload is disk-
    /// backed — real spill on a durable store, a no-op otherwise.
    fn drop_resident(&mut self) {
        if self.disk.is_some() {
            self.part = OnceLock::new();
        }
    }
}

/// Partition-level overrides contributed by **one** delta to one shard's
/// chain (plus an optional materialized cumulative checkpoint).
#[derive(Clone, Debug, Default)]
struct ShardRecord {
    overrides: HashMap<PartitionId, PayloadCell>,
    versions: HashMap<PartitionId, VersionId>,
    checkpoint: Option<ShardCheckpoint>,
    /// Whether capacity enforcement moved this record's payloads — its
    /// overrides and its checkpoint, if it carries one — to (modeled)
    /// spill storage.  Spilled payloads leave the resident accounting
    /// and re-fetches through them are priced by the engines.  The
    /// shard's *newest* checkpoint record and everything after it never
    /// spill: they are the state every future walk must reach.
    spilled: bool,
}

/// Materialized cumulative partition state for one shard.
#[derive(Clone, Debug, Default)]
struct ShardCheckpoint {
    overrides: HashMap<PartitionId, PayloadCell>,
    versions: HashMap<PartitionId, VersionId>,
}

/// The store's incrementally maintained current state: every override
/// accumulated along the chain, updated in place by `apply` (O(|delta|)
/// per update).  Lookups at the *latest* snapshot resolve here with a
/// single probe instead of walking the chain.
#[derive(Clone, Debug, Default)]
struct CurrentIndex {
    master: HashMap<VertexId, PartitionId>,
    replicas: HashMap<VertexId, Vec<PartitionId>>,
    degree: HashMap<VertexId, (u32, u32)>,
    parts: HashMap<PartitionId, Arc<Partition>>,
    versions: HashMap<PartitionId, VersionId>,
}

/// A source of observed job footprints for the locality placer: one
/// entry per job, each listing the distinct partitions that job
/// co-accessed.  The engine's slot planner implements this (it watches
/// every pending set a job ever registers); ad-hoc profiles use
/// [`FootprintProfile`].
pub trait PlacementStats {
    /// One footprint per observed job: the distinct partitions that
    /// job's accesses span.  Order and duplicates are irrelevant.
    fn footprints(&self) -> Vec<Vec<PartitionId>>;
}

/// A hand-rolled [`PlacementStats`]: record each job's partition
/// footprint and feed the profile to [`ShardPlacement::locality`].
#[derive(Clone, Debug, Default)]
pub struct FootprintProfile {
    footprints: Vec<Vec<PartitionId>>,
}

impl FootprintProfile {
    /// An empty profile.
    pub fn new() -> Self {
        FootprintProfile::default()
    }

    /// Records one job's footprint (deduplicated and sorted on entry).
    pub fn record<I: IntoIterator<Item = PartitionId>>(&mut self, parts: I) {
        let mut fp: Vec<PartitionId> = parts.into_iter().collect();
        fp.sort_unstable();
        fp.dedup();
        self.footprints.push(fp);
    }

    /// Number of recorded footprints.
    pub fn len(&self) -> usize {
        self.footprints.len()
    }

    /// Whether no footprint was recorded.
    pub fn is_empty(&self) -> bool {
        self.footprints.is_empty()
    }
}

impl PlacementStats for FootprintProfile {
    fn footprints(&self) -> Vec<Vec<PartitionId>> {
        self.footprints.clone()
    }
}

/// How partitions are assigned to the shards of a
/// [`ShardedSnapshotStore`] (and therefore which stage-one I/O lane a
/// partition load occupies).  Placement never changes what any view
/// observes — only the chain layout and lane attribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ShardPlacement {
    /// `pid % shards`: consecutive partitions land on distinct shards,
    /// so an in-order scan naturally interleaves lanes.
    #[default]
    RoundRobin,
    /// Fibonacci-hashed (`pid * 2^64/φ`): decorrelates the lane from the
    /// partition id, so placement stays balanced when the workload's
    /// partition footprint is itself strided or clustered.
    Hash,
    /// An explicit partition → shard table, as computed by the greedy
    /// co-access placer ([`ShardPlacement::locality`]): partitions that
    /// the same jobs co-access share a shard, so each job's traffic
    /// concentrates on its home lane.  Partitions beyond the table fall
    /// back to round-robin.
    Locality(Arc<[u32]>),
}

impl ShardPlacement {
    /// The shard partition `pid` lands on under this placement.
    pub fn shard_of(&self, pid: PartitionId, shards: usize) -> usize {
        let shards = shards.max(1);
        match self {
            ShardPlacement::RoundRobin => pid as usize % shards,
            ShardPlacement::Hash => {
                (((pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % shards
            }
            ShardPlacement::Locality(table) => table
                .get(pid as usize)
                .map(|&s| s as usize % shards)
                .unwrap_or(pid as usize % shards),
        }
    }

    /// Builds a [`ShardPlacement::Locality`] table from observed job
    /// footprints: a greedy co-access placer.
    ///
    /// Two partitions' co-access weight is the number of footprints
    /// naming both.  Partitions are placed in descending total-weight
    /// order, each onto the shard (with remaining capacity — every
    /// shard holds at most `ceil(np / shards)` partitions, so placement
    /// stays balanced) holding the most co-accessed weight already;
    /// ties break toward the lighter then lower-indexed shard, and
    /// partitions appearing in no footprint backfill the least-loaded
    /// shards in pid order.  Fully deterministic for a given input.
    pub fn locality(stats: &dyn PlacementStats, num_partitions: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let np = num_partitions;
        let cap = np.div_ceil(shards).max(1);
        let mut nbrs: Vec<HashMap<u32, u64>> = vec![HashMap::new(); np];
        for fp in stats.footprints() {
            let mut fp: Vec<u32> = fp.into_iter().filter(|&p| (p as usize) < np).collect();
            fp.sort_unstable();
            fp.dedup();
            for (i, &p) in fp.iter().enumerate() {
                for &q in &fp[i + 1..] {
                    *nbrs[p as usize].entry(q).or_insert(0) += 1;
                    *nbrs[q as usize].entry(p).or_insert(0) += 1;
                }
            }
        }
        let deg: Vec<u64> = nbrs.iter().map(|m| m.values().sum()).collect();
        let mut order: Vec<usize> = (0..np).collect();
        order.sort_by_key(|&p| (std::cmp::Reverse(deg[p]), p));
        let mut assign = vec![u32::MAX; np];
        let mut load = vec![0usize; shards];
        for &p in &order {
            let mut aff = vec![0u64; shards];
            for (&q, &w) in &nbrs[p] {
                let a = assign[q as usize];
                if a != u32::MAX {
                    aff[a as usize] += w;
                }
            }
            let mut best = usize::MAX;
            for (s, &l) in load.iter().enumerate() {
                if l >= cap {
                    continue;
                }
                if best == usize::MAX
                    || aff[s] > aff[best]
                    || (aff[s] == aff[best] && l < load[best])
                {
                    best = s;
                }
            }
            // cap * shards >= np, so a shard with room always exists;
            // the fallback only guards a zero-partition store.
            let best = if best == usize::MAX { 0 } else { best };
            assign[p] = best as u32;
            load[best] += 1;
        }
        ShardPlacement::Locality(assign.into())
    }
}

/// Per-shard resident-state budget of a [`ShardedSnapshotStore`]
/// (default: unlimited).  See the module docs: enforcement spills the
/// coldest pre-checkpoint record payloads at install time and surfaces
/// re-fetches of spilled state through [`GraphView::partition_spilled`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCapacity {
    /// Budget, in [`ShardedSnapshotStore::shard_resident_bytes`] terms,
    /// each shard's chain may keep resident.  The shard's newest
    /// checkpoint and every at-or-above-checkpoint record always stay
    /// resident (they terminate walks), so a budget below that floor is
    /// enforced as far as spilling pre-checkpoint payloads can go.
    pub max_resident_bytes: u64,
}

impl ShardCapacity {
    /// No budget: nothing ever spills (the default).
    pub const UNLIMITED: ShardCapacity = ShardCapacity { max_resident_bytes: u64::MAX };

    /// A budget of `max_resident_bytes` per shard.
    pub fn bytes(max_resident_bytes: u64) -> Self {
        ShardCapacity { max_resident_bytes }
    }

    /// Whether this capacity can ever trigger a spill.
    pub fn is_limited(&self) -> bool {
        self.max_resident_bytes != u64::MAX
    }
}

impl Default for ShardCapacity {
    fn default() -> Self {
        ShardCapacity::UNLIMITED
    }
}

/// One shard of a [`ShardedSnapshotStore`]: an independent, append-only
/// delta chain over the partitions placed on it.  A shard's chain grows
/// only when a delta re-versions one of *its* partitions, so shards
/// evolve independently — which is what lets the executor treat them as
/// parallel stage-one I/O lanes (one disk fetch in flight per shard).
#[derive(Clone, Debug, Default)]
pub struct SnapshotShard {
    records: Vec<ShardRecord>,
}

impl SnapshotShard {
    /// Number of records in this shard's chain.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Number of records carrying a materialized checkpoint.
    pub fn num_checkpoints(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.checkpoint.is_some())
            .count()
    }

    /// Number of records whose override payloads were spilled by
    /// capacity enforcement.
    pub fn num_spilled(&self) -> usize {
        self.records.iter().filter(|r| r.spilled).count()
    }

    /// Chain indices of the spilled records (ascending).
    pub fn spilled_indices(&self) -> Vec<usize> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.spilled)
            .map(|(i, _)| i)
            .collect()
    }

    /// Chain index of the newest record carrying a checkpoint.
    pub fn newest_checkpoint(&self) -> Option<usize> {
        self.records.iter().rposition(|r| r.checkpoint.is_some())
    }
}

/// The store: a base [`PartitionSet`] (timestamp 0) plus incremental
/// snapshots, with the partition delta chains sharded round-robin
/// (`pid % shards`) across independently `Arc`'d [`SnapshotShard`]s.
/// Vertex-level overrides (masters, replica lists, degrees) span
/// partitions and therefore stay store-global; [`GraphView`] resolves
/// across shards transparently, so shard count never changes what any
/// view observes — only how the chains are laid out and which I/O lane
/// a partition load occupies.
///
/// Records are layered (see the module docs): `apply` is O(|delta|) in
/// chain length, latest-view lookups are O(1) via the current-state
/// index, and historical lookups walk backwards at most to the nearest
/// checkpoint ([`CompactionPolicy`]).
#[derive(Debug)]
pub struct ShardedSnapshotStore {
    base: PartitionSet,
    shards: Vec<Arc<SnapshotShard>>,
    placement: ShardPlacement,
    records: Vec<SnapshotRecord>,
    current: CurrentIndex,
    compaction: CompactionPolicy,
    capacity: ShardCapacity,
    /// Worker threads `apply` may fan partition rebuilds out on
    /// (1 = the serial path, bit-for-bit).
    apply_workers: usize,
    /// Estimated rebuild edges each apply worker must have before the
    /// fan-out engages (0 = no clamp; see
    /// [`with_apply_threshold`](Self::with_apply_threshold)).
    apply_edges_per_worker: usize,
    /// Store-wide count of spilled records (fast-path guard: spill
    /// checks are free while nothing has ever spilled).
    spilled_records: usize,
    /// The open durability layer, when [`persist_to`](Self::persist_to)
    /// or [`open`](Self::open) attached one (`None` = in-memory store,
    /// every pre-durability code path byte-for-byte).
    wal: Option<StoreWal>,
    /// Fault-plane hook (see [`crate::fault`]): applies, WAL boundaries,
    /// and rehydrations notify it when set.  Fail-open — injection
    /// accounts retries and modeled latency but never changes what any
    /// view observes.
    faults: FaultHandle,
    /// Observability hook (see [`crate::obs`]): applies, spills, and
    /// footprints report here when set.  Unset (the default) costs one
    /// branch per apply and changes nothing observable.
    observer: ObsHandle,
    /// Cumulative payload bytes spilled per shard since this store was
    /// constructed/opened (feeds [`StoreObserver::footprint`]).
    spilled_bytes: Vec<u64>,
    /// Recovery replay stats from [`open`](Self::open), reported to the
    /// observer when one attaches (open runs before any hook exists).
    replay: Option<ReplayStats>,
}

/// What [`ShardedSnapshotStore::open`] replayed, held until an observer
/// attaches.
#[derive(Clone, Copy, Debug)]
struct ReplayStats {
    frames: u64,
    bytes: u64,
    micros: u64,
}

/// The ubiquitous single-`Arc` spelling: a [`ShardedSnapshotStore`]
/// defaults to one shard via [`ShardedSnapshotStore::new`].
pub type SnapshotStore = ShardedSnapshotStore;

/// Default minimum rebuild work (estimated affected edges) per apply
/// worker before `apply` fans out on threads.  Below roughly this many
/// edges per worker, the spawn/join cost of a scoped thread exceeds
/// the rebuild it would perform and fanning out is a slowdown.
pub const DEFAULT_APPLY_EDGES_PER_WORKER: usize = 8192;

/// One worker's locally accumulated rebuild results during a
/// concurrent `apply` (lock-free; merged on the main thread).
type RebuildResults = Vec<(PartitionId, Result<Partition, SnapshotError>)>;

impl ShardedSnapshotStore {
    /// Wraps a base partitioned graph as snapshot timestamp 0, on a
    /// single shard.
    pub fn new(base: PartitionSet) -> Self {
        Self::with_shards(base, 1)
    }

    /// Wraps a base graph with its partitions placed round-robin across
    /// `shards` shards (clamped to `1..=num_partitions`).
    pub fn with_shards(base: PartitionSet, shards: usize) -> Self {
        Self::with_placement(base, shards, ShardPlacement::RoundRobin)
    }

    /// Wraps a base graph with its partitions assigned to `shards` shards
    /// (clamped to `1..=num_partitions`) under the given placement.
    pub fn with_placement(base: PartitionSet, shards: usize, placement: ShardPlacement) -> Self {
        let shards = shards.clamp(1, base.num_partitions().max(1));
        ShardedSnapshotStore {
            base,
            shards: (0..shards)
                .map(|_| Arc::new(SnapshotShard::default()))
                .collect(),
            placement,
            records: Vec::new(),
            current: CurrentIndex::default(),
            compaction: CompactionPolicy::default(),
            capacity: ShardCapacity::default(),
            apply_workers: 1,
            apply_edges_per_worker: DEFAULT_APPLY_EDGES_PER_WORKER,
            spilled_records: 0,
            wal: None,
            observer: ObsHandle::none(),
            faults: FaultHandle::none(),
            spilled_bytes: vec![0; shards],
            replay: None,
        }
    }

    /// Attaches an observability hook (builder style).  Applies, WAL
    /// appends/fsyncs, spills, rehydrations, and checkpoint walks
    /// report through it from here on; pending recovery-replay stats
    /// (if this store came from [`open`](Self::open)) are reported
    /// immediately.  Hooks only *read* store state — no view, apply
    /// result, or spill decision ever depends on the observer.
    pub fn with_observer(mut self, obs: Arc<dyn StoreObserver>) -> Self {
        self.set_observer(obs);
        self
    }

    /// Non-consuming spelling of [`with_observer`](Self::with_observer).
    pub fn set_observer(&mut self, obs: Arc<dyn StoreObserver>) {
        if let Some(replay) = self.replay.take() {
            obs.recovery_replay(replay.frames, replay.bytes, replay.micros);
        }
        if let Some(w) = &mut self.wal {
            w.set_observer(Arc::clone(&obs));
        }
        self.observer.set(obs);
    }

    /// Attaches a fault-plane hook (builder style).  Applies, WAL
    /// appends/fsyncs, and rehydrations notify it from here on (see
    /// [`crate::fault`]).  Injection at these boundaries is fail-open:
    /// the injector accounts faults, retries, and modeled latency, but
    /// no view, apply result, or spill decision ever changes.
    pub fn with_faults(mut self, inj: Arc<dyn FaultInjector>) -> Self {
        self.set_faults(inj);
        self
    }

    /// Non-consuming spelling of [`with_faults`](Self::with_faults).
    pub fn set_faults(&mut self, inj: Arc<dyn FaultInjector>) {
        if let Some(w) = &mut self.wal {
            w.set_faults(Arc::clone(&inj));
        }
        self.faults.set(inj);
    }

    /// Replaces the checkpoint compaction policy (builder style).
    /// Compaction never changes what any view observes, only how far a
    /// historical lookup walks.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// The active checkpoint compaction policy.
    pub fn compaction(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Replaces the per-shard resident-state budget (builder style).
    /// Capacity never changes what any view observes — only which
    /// records stay resident and what a re-fetch costs (see the module
    /// docs).  Enforcement runs at every subsequent install.
    pub fn with_capacity(mut self, capacity: ShardCapacity) -> Self {
        self.capacity = capacity;
        // The builder signature is infallible; on a durable store a
        // failed spill append is deferred into the wal and surfaced by
        // the next fallible operation.
        if let Err(e) = self.enforce_capacity() {
            if let Some(w) = &mut self.wal {
                w.poison(&e);
            }
        }
        self
    }

    /// The active per-shard capacity budget.
    pub fn capacity(&self) -> ShardCapacity {
        self.capacity
    }

    /// Sets how many worker threads [`apply`](Self::apply) may fan the
    /// partition rebuilds out on (builder style; clamped to at least 1).
    /// Results are bit-identical at any worker count — rebuilds are pure
    /// per-partition functions of the pre-delta state, sequenced per
    /// shard, and installed in deterministic order.
    pub fn with_apply_workers(mut self, workers: usize) -> Self {
        self.apply_workers = workers.max(1);
        self
    }

    /// Worker threads `apply` fans out on (1 = serial).
    pub fn apply_workers(&self) -> usize {
        self.apply_workers
    }

    /// Sets the minimum estimated rebuild work (affected edges) each
    /// apply worker must have before [`apply`](Self::apply) fans out
    /// (builder style).  Small deltas stay serial regardless of
    /// [`with_apply_workers`](Self::with_apply_workers): below the
    /// threshold, the spawn/join cost of scoped threads dwarfs the
    /// rebuild itself and the fan-out is a net slowdown.  `0` disables
    /// the clamp entirely — a test-only override that keeps the
    /// unclamped concurrent path reachable on the tiny fixtures the
    /// differential suites use.  Results are bit-identical either way.
    pub fn with_apply_threshold(mut self, edges_per_worker: usize) -> Self {
        self.apply_edges_per_worker = edges_per_worker;
        self
    }

    /// Estimated affected edges required per apply worker before the
    /// fan-out engages (`0` = no clamp).
    pub fn apply_threshold(&self) -> usize {
        self.apply_edges_per_worker
    }

    /// Whether any record's payload has ever been spilled.
    pub fn has_spills(&self) -> bool {
        self.spilled_records > 0
    }

    /// The base graph.
    pub fn base(&self) -> &PartitionSet {
        &self.base
    }

    /// Number of shards partitions are placed across.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard partition `pid` is placed on.
    pub fn shard_of(&self, pid: PartitionId) -> usize {
        self.placement.shard_of(pid, self.shards.len())
    }

    /// The partition→shard placement strategy.
    pub fn placement(&self) -> &ShardPlacement {
        &self.placement
    }

    /// One shard's delta chain (each shard is its own `Arc`).
    pub fn shard(&self, shard: usize) -> &Arc<SnapshotShard> {
        &self.shards[shard]
    }

    /// Number of snapshots applied on top of the base.
    pub fn num_snapshots(&self) -> usize {
        self.records.len()
    }

    /// Number of snapshot records carrying a vertex-level checkpoint.
    pub fn num_checkpoints(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.checkpoint.is_some())
            .count()
    }

    /// Timestamp of the newest snapshot (0 if only the base exists).
    pub fn latest_timestamp(&self) -> u64 {
        self.records.last().map_or(0, |r| r.timestamp)
    }

    /// The snapshot timestamp a job arriving at `ts` binds to: the newest
    /// snapshot whose timestamp does not exceed `ts` (0 = the base).  Two
    /// jobs with equal bind timestamps observe identical partition
    /// versions everywhere — the key the serving layer batches waves by.
    pub fn snapshot_at(&self, ts: u64) -> u64 {
        // Records are strictly ascending by timestamp (`apply` enforces
        // it), so the bind point is a partition point.
        let idx = self.records.partition_point(|r| r.timestamp <= ts);
        idx.checked_sub(1).map_or(0, |i| self.records[i].timestamp)
    }

    /// Whether `record` is the newest state the store holds (the regime
    /// the current-state index answers in O(1)).
    fn is_latest(&self, record: Option<usize>) -> bool {
        match record {
            Some(i) => i + 1 == self.records.len(),
            None => self.records.is_empty(),
        }
    }

    /// Resolves one vertex-level attribute at `record`: the latest
    /// snapshot answers from the current-state index; a historical one
    /// walks its chain backwards until a record's delta names the key
    /// (`from_delta`) or carries a checkpoint (`from_cp`); `base` is the
    /// pre-snapshot fallback.  All five resolvers share this skeleton so
    /// a walk-semantics change lands everywhere at once.
    fn vertex_at<'a, T: 'a>(
        &'a self,
        record: Option<usize>,
        from_current: impl Fn(&'a CurrentIndex) -> Option<T>,
        from_delta: impl Fn(&'a SnapshotRecord) -> Option<T>,
        from_cp: impl Fn(&'a VertexCheckpoint) -> Option<T>,
        base: impl Fn() -> T,
    ) -> T {
        if self.is_latest(record) {
            return from_current(&self.current).unwrap_or_else(base);
        }
        let Some(mut i) = record else {
            return base();
        };
        loop {
            let r = &self.records[i];
            if let Some(x) = from_delta(r) {
                return x;
            }
            if let Some(cp) = &r.checkpoint {
                return from_cp(cp).unwrap_or_else(base);
            }
            if i == 0 {
                return base();
            }
            i -= 1;
        }
    }

    /// Partition-level sibling of [`Self::vertex_at`]: walks the owning
    /// shard's chain from this snapshot's head.
    fn shard_at<'a, T: 'a>(
        &'a self,
        record: Option<usize>,
        pid: PartitionId,
        from_current: impl Fn(&'a CurrentIndex) -> Option<T>,
        from_rec: impl Fn(&'a ShardRecord) -> Option<T>,
        from_cp: impl Fn(&'a ShardCheckpoint) -> Option<T>,
        base: impl Fn() -> T,
    ) -> T {
        if self.is_latest(record) {
            return from_current(&self.current).unwrap_or_else(base);
        }
        let Some(ri) = record else {
            return base();
        };
        let s = self.shard_of(pid);
        let shard = &self.shards[s];
        let mut h = self.records[ri].shard_heads[s];
        while h > 0 {
            let r = &shard.records[h - 1];
            if let Some(x) = from_rec(r) {
                return x;
            }
            if let Some(cp) = &r.checkpoint {
                return from_cp(cp).unwrap_or_else(base);
            }
            h -= 1;
        }
        base()
    }

    /// Like [`Self::shard_at`] but specialized for the payloads
    /// themselves: an override supplied by a spilled or lazily-recovered
    /// record rehydrates from the shard segment on first touch
    /// (read-through; the latest view and in-memory stores never do
    /// I/O here).
    fn partition_at(&self, record: Option<usize>, pid: PartitionId) -> &Arc<Partition> {
        if self.is_latest(record) {
            return self
                .current
                .parts
                .get(&pid)
                .unwrap_or_else(|| self.base.partition(pid));
        }
        let Some(ri) = record else {
            return self.base.partition(pid);
        };
        let s = self.shard_of(pid);
        let shard = &self.shards[s];
        let mut h = self.records[ri].shard_heads[s];
        while h > 0 {
            let r = &shard.records[h - 1];
            if let Some(cell) = r.overrides.get(&pid) {
                return cell.load(self.wal.as_ref());
            }
            if let Some(cp) = &r.checkpoint {
                return match cp.overrides.get(&pid) {
                    Some(cell) => cell.load(self.wal.as_ref()),
                    None => self.base.partition(pid),
                };
            }
            h -= 1;
        }
        self.base.partition(pid)
    }

    fn version_at(&self, record: Option<usize>, pid: PartitionId) -> VersionId {
        self.shard_at(
            record,
            pid,
            |c| c.versions.get(&pid).copied(),
            |r| r.versions.get(&pid).copied(),
            |cp| cp.versions.get(&pid).copied(),
            || 0,
        )
    }

    fn master_at(&self, record: Option<usize>, v: VertexId) -> PartitionId {
        self.vertex_at(
            record,
            |c| c.master.get(&v).copied(),
            |r| r.master_delta.get(&v).copied(),
            |cp| cp.master.get(&v).copied(),
            || self.base.master_of(v),
        )
    }

    fn replicas_at(&self, record: Option<usize>, v: VertexId) -> &[PartitionId] {
        self.vertex_at(
            record,
            |c| c.replicas.get(&v).map(|r| r.as_slice()),
            |r| r.replica_delta.get(&v).map(|r| r.as_slice()),
            |cp| cp.replicas.get(&v).map(|r| r.as_slice()),
            || self.base.replicas_of(v),
        )
    }

    fn degree_at(&self, record: Option<usize>, v: VertexId) -> (u32, u32) {
        self.vertex_at(
            record,
            |c| c.degree.get(&v).copied(),
            |r| r.degree_delta.get(&v).copied(),
            |cp| cp.degree.get(&v).copied(),
            || self.base_degree(v),
        )
    }

    /// Whole-graph degrees from the base partition metadata (any replica
    /// carries them).
    fn base_degree(&self, v: VertexId) -> (u32, u32) {
        match self.base.replicas_of(v).first() {
            Some(&pid) => {
                let p = self.base.partition(pid);
                let l = p.local_of(v).expect("replica listed");
                let m = p.meta()[l as usize];
                (m.global_out_degree, m.global_in_degree)
            }
            None => (0, 0),
        }
    }

    /// Applies a delta, creating a new snapshot at `timestamp`.
    ///
    /// Cost is O(|delta| + rebuilt partition edges) regardless of how
    /// long the chain already is: only the touched entries are written
    /// (to the new layered record and the current-state index), never
    /// the accumulated override state — except on the applies where the
    /// [`CompactionPolicy`] schedules a checkpoint, which clone the
    /// accumulated overrides (amortized O(state/k)).
    ///
    /// On a durable store the new record's frames are appended and
    /// fsync'd before the in-memory state mutates, so an I/O error
    /// leaves the store consistent (the log then holds a committed
    /// prefix; see the [`crate::wal`] module docs).
    ///
    /// Returns the number of partitions that were re-versioned.
    pub fn apply(&mut self, timestamp: u64, delta: &GraphDelta) -> Result<usize, StoreError> {
        self.faults
            .notify(StoreFaultBoundary::ApplyRebuild, None, timestamp);
        let apply_t0 = self.observer.get().map(|_| Instant::now());
        if let Some(w) = &self.wal {
            w.check()?;
        }
        let prev_ts = self.latest_timestamp();
        if timestamp <= prev_ts {
            return Err(SnapshotError::NonMonotonicTimestamp {
                previous: prev_ts,
                given: timestamp,
            }
            .into());
        }
        let n = self.base.num_vertices();
        let np = self.base.num_partitions();

        // Resolve helpers against the current (latest) state: one probe
        // each via the current-state index.
        let resolve = |pid: PartitionId| -> &Arc<Partition> {
            self.current
                .parts
                .get(&pid)
                .unwrap_or_else(|| self.base.partition(pid))
        };
        let replicas = |v: VertexId| -> &[PartitionId] {
            self.current
                .replicas
                .get(&v)
                .map(|r| r.as_slice())
                .unwrap_or_else(|| self.base.replicas_of(v))
        };
        let master = |v: VertexId| -> PartitionId {
            self.current
                .master
                .get(&v)
                .copied()
                .unwrap_or_else(|| self.base.master_of(v))
        };
        let degree = |v: VertexId| -> (u32, u32) {
            self.current
                .degree
                .get(&v)
                .copied()
                .unwrap_or_else(|| self.base_degree(v))
        };

        // 1. Locate removals and place additions.  Removals sharing a
        //    source resolve against the same pre-delta adjacency, so each
        //    replica's out-neighbor set is materialized at most once per
        //    source — lazily, in replica order, stopping at the first
        //    partition holding the edge (as the old scan did).
        let mut removed: HashMap<PartitionId, Vec<(VertexId, VertexId)>> = HashMap::new();
        let mut out_cache: HashMap<VertexId, Vec<HashSet<VertexId>>> = HashMap::new();
        for &(s, d) in &delta.removals {
            if s >= n || d >= n {
                return Err(SnapshotError::VertexOutOfRange(s.max(d)).into());
            }
            let reps = replicas(s);
            let adj = out_cache.entry(s).or_default();
            let mut found = None;
            for (i, &pid) in reps.iter().enumerate() {
                if i == adj.len() {
                    let p = resolve(pid);
                    adj.push(
                        p.local_of(s)
                            .map(|li| p.out_edges(li).map(|(t, _)| p.global_of(t)).collect())
                            .unwrap_or_default(),
                    );
                }
                if adj[i].contains(&d) {
                    found = Some(pid);
                    break;
                }
            }
            let pid = found.ok_or(SnapshotError::EdgeNotFound(s, d))?;
            removed.entry(pid).or_default().push((s, d));
        }
        // The fallback partition (for additions whose endpoints are both
        // unplaced) costs an O(np) scan, so resolve it lazily.
        let mut fallback_pid: Option<PartitionId> = None;
        let mut added: HashMap<PartitionId, Vec<Edge>> = HashMap::new();
        for &e in &delta.additions {
            if e.src >= n || e.dst >= n {
                return Err(SnapshotError::VertexOutOfRange(e.src.max(e.dst)).into());
            }
            let pid = match (master(e.src), master(e.dst)) {
                (m, _) if m != NO_PARTITION => m,
                (_, m) if m != NO_PARTITION => m,
                _ => *fallback_pid.get_or_insert_with(|| {
                    (0..np as PartitionId)
                        .min_by_key(|&pid| resolve(pid).num_edges())
                        .unwrap_or(0)
                }),
            };
            added.entry(pid).or_default().push(e);
        }

        // 2. Degree deltas and the affected partition set.
        let mut ddeg: HashMap<VertexId, (i64, i64)> = HashMap::new();
        for e in &delta.additions {
            ddeg.entry(e.src).or_default().0 += 1;
            ddeg.entry(e.dst).or_default().1 += 1;
        }
        for &(s, d) in &delta.removals {
            ddeg.entry(s).or_default().0 -= 1;
            ddeg.entry(d).or_default().1 -= 1;
        }
        // Only partitions whose *edge set* changed are re-versioned; degree
        // and master-location changes live in the snapshot's override maps
        // (job-specific lookups), so unchanged partitions keep their cache
        // identity — the sharing the paper's Fig. 16 regime depends on.
        let mut affected: Vec<PartitionId> = removed.keys().chain(added.keys()).copied().collect();
        affected.sort_unstable();
        affected.dedup();

        // 3. New degrees for every touched vertex.
        let new_degree = |v: VertexId| -> (u32, u32) {
            let (o, i) = degree(v);
            match ddeg.get(&v) {
                Some(&(dout, din)) => (
                    (o as i64 + dout).max(0) as u32,
                    (i as i64 + din).max(0) as u32,
                ),
                None => (o, i),
            }
        };

        // 4. Rebuild each affected partition's edge share.  A rebuild is
        //    a pure, lock-free function of the pre-delta state, so with
        //    more than one apply worker the rebuilds fan out on scoped
        //    threads claiming partitions from a shared cursor; each
        //    worker accumulates its results locally (no shared lock on
        //    the rebuild path) and the main thread merges after the
        //    join.  The vertex-level merge afterwards stays
        //    single-threaded and ordered, so the result is
        //    bit-identical to the serial path at any worker count.
        let rebuild_one = |pid: PartitionId| -> Result<Partition, SnapshotError> {
            let mut edges = resolve(pid).edges_global();
            if let Some(rm) = removed.get(&pid) {
                // Remove the first k matching instances of each pair in
                // one pass instead of an O(edges) scan per removal.
                let mut counts: HashMap<(VertexId, VertexId), usize> = HashMap::new();
                for &(s, d) in rm {
                    *counts.entry((s, d)).or_default() += 1;
                }
                edges.retain(|e| match counts.get_mut(&(e.src, e.dst)) {
                    Some(c) if *c > 0 => {
                        *c -= 1;
                        false
                    }
                    _ => true,
                });
                for &(s, d) in rm {
                    if counts.get(&(s, d)).is_some_and(|&c| c > 0) {
                        return Err(SnapshotError::EdgeNotFound(s, d));
                    }
                }
            }
            if let Some(ad) = added.get(&pid) {
                edges.extend_from_slice(ad);
            }
            edges.sort_by_key(|e| (e.src, e.dst));
            Ok(Partition::from_edges_with(pid, &edges, &new_degree))
        };
        // More threads than units of work is pure overhead, so clamp to
        // the work count — but deliberately NOT to the machine's core
        // count: a caller asking for 4 apply workers gets 4 real
        // threads even on a 1-core host, so the differential suites
        // exercise the concurrent path (not a silently serial fallback)
        // on every machine that runs them.  Small deltas additionally
        // clamp to the estimated rebuild work (one thread per
        // `apply_edges_per_worker` affected edges): below the
        // threshold the spawn/join cost exceeds the rebuild itself,
        // so the fan-out would be a slowdown, not a speedup.
        let rebuild_edges: usize = affected
            .iter()
            .map(|&pid| resolve(pid).num_edges())
            .sum::<usize>()
            + delta.additions.len();
        let work_cap = match self.apply_edges_per_worker {
            0 => usize::MAX,
            per => (rebuild_edges / per).max(1),
        };
        let fanout = |units: usize| self.apply_workers.min(units).min(work_cap);
        let mut rebuilt: HashMap<PartitionId, Partition> = HashMap::new();
        let threads = fanout(affected.len());
        if threads > 1 {
            // Workers claim partitions from a shared cursor and stack
            // results in a worker-local vector — the rebuild path holds
            // no lock at all; the main thread merges the pid-tagged
            // results after the scope joins, so the chain inputs
            // assemble identically however the partitions interleave
            // across workers.
            let cursor = AtomicUsize::new(0);
            let results: Vec<Result<RebuildResults, StoreError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = RebuildResults::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&pid) = affected.get(i) else {
                                    break;
                                };
                                local.push((pid, rebuild_one(pid)));
                            }
                            local
                        })
                    })
                    .collect();
                // A panicked worker must not abort the whole store:
                // surface it as a typed error and refuse the partial
                // result (no state has been installed yet).
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .map_err(|_| StoreError::WorkerPanic("apply partition rebuild"))
                    })
                    .collect()
            });
            // Surface the error the serial (sorted-pid) loop would have
            // hit first; a worker panic outranks any semantic error.
            let mut first_err: Option<(PartitionId, SnapshotError)> = None;
            for local in results {
                for (pid, r) in local? {
                    match r {
                        Ok(p) => {
                            rebuilt.insert(pid, p);
                        }
                        Err(e) => {
                            if first_err.is_none_or(|(fp, _)| pid < fp) {
                                first_err = Some((pid, e));
                            }
                        }
                    }
                }
            }
            if let Some((_, e)) = first_err {
                return Err(e.into());
            }
        } else {
            for &pid in &affected {
                rebuilt.insert(pid, rebuild_one(pid)?);
            }
        }

        // 5. Recompute replica membership and masters for the touched
        //    vertices only — the layered record stores exactly these.
        let mut master_delta: HashMap<VertexId, PartitionId> = HashMap::new();
        let mut replica_delta: HashMap<VertexId, Vec<PartitionId>> = HashMap::new();
        let mut degree_delta: HashMap<VertexId, (u32, u32)> = HashMap::new();
        for &v in ddeg.keys() {
            let mut reps: Vec<PartitionId> = replicas(v)
                .iter()
                .copied()
                .filter(|p| affected.binary_search(p).is_err())
                .collect();
            for &pid in &affected {
                if rebuilt[&pid].local_of(v).is_some() {
                    reps.push(pid);
                }
            }
            reps.sort_unstable();
            let old_master = master(v);
            let new_master = if reps.contains(&old_master) {
                old_master
            } else {
                reps.first().copied().unwrap_or(NO_PARTITION)
            };
            replica_delta.insert(v, reps);
            master_delta.insert(v, new_master);
            degree_delta.insert(v, new_degree(v));
        }

        // 6. Patch master metadata and group rebuilt partitions by the
        //    shard that owns them.  Patching is per-partition local, so
        //    it rides the same worker budget as the rebuilds (one chunk
        //    of the pid-sorted vector per worker); the result is
        //    independent of the split.
        let master_lookup = |v: VertexId| -> PartitionId {
            master_delta.get(&v).copied().unwrap_or_else(|| master(v))
        };
        let mut parts: Vec<(PartitionId, Partition)> = rebuilt.into_iter().collect();
        parts.sort_unstable_by_key(|&(pid, _)| pid);
        let threads = fanout(parts.len());
        if threads > 1 {
            let chunk = parts.len().div_ceil(threads);
            let lookup = &master_lookup;
            // Join explicitly: an unwinding patch worker becomes a typed
            // error instead of propagating the panic out of the scope.
            let panicked = std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .chunks_mut(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            for (_, p) in slice.iter_mut() {
                                p.patch_masters(lookup);
                            }
                        })
                    })
                    .collect();
                handles.into_iter().any(|h| h.join().is_err())
            });
            if panicked {
                return Err(StoreError::WorkerPanic("apply master patch"));
            }
        } else {
            for (_, p) in parts.iter_mut() {
                p.patch_masters(&master_lookup);
            }
        }
        let mut by_shard: HashMap<usize, Vec<(PartitionId, Partition)>> = HashMap::new();
        for (pid, p) in parts {
            by_shard
                .entry(self.shard_of(pid))
                .or_default()
                .push((pid, p));
        }

        // 7. Stage one *layered* record per affected shard (only this
        //    delta's partitions; untouched shards keep their head).  On
        //    a durable store the shard frames and then the store-level
        //    commit frame are appended BEFORE any in-memory mutation,
        //    so an I/O error refuses the apply with the store
        //    unchanged; shards are staged in ascending id for a
        //    deterministic frame order.
        let mut by_shard: Vec<(usize, Vec<(PartitionId, Partition)>)> =
            by_shard.into_iter().collect();
        by_shard.sort_unstable_by_key(|&(s, _)| s);
        let mut shard_heads: Vec<usize> = self
            .records
            .last()
            .map(|r| r.shard_heads.clone())
            .unwrap_or_else(|| vec![0; self.shards.len()]);
        type StagedArcs = Vec<(PartitionId, Arc<Partition>, VersionId)>;
        let mut staged: Vec<(usize, ShardRecord, StagedArcs)> = Vec::with_capacity(by_shard.len());
        for (s, parts) in by_shard {
            let mut arcs: StagedArcs = Vec::with_capacity(parts.len());
            for (pid, p) in parts {
                let ver = self.current.versions.get(&pid).copied().unwrap_or(0) + 1;
                arcs.push((pid, Arc::new(p), ver));
            }
            arcs.sort_unstable_by_key(|&(pid, _, _)| pid);
            let mut rec = ShardRecord::default();
            for &(pid, _, ver) in &arcs {
                rec.versions.insert(pid, ver);
            }
            match &mut self.wal {
                Some(w) => {
                    let (payload, spans) =
                        encode_shard_frame(wal::K_SHARD_REC, None, &rec.versions, &arcs);
                    let base = w.append_shard(s, &payload)?;
                    for ((pid, part, _), (rel, len)) in arcs.iter().zip(spans) {
                        let loc = PayloadLoc { shard: s as u32, offset: base + rel as u64, len };
                        rec.overrides
                            .insert(*pid, PayloadCell::resident_at(Arc::clone(part), loc));
                    }
                }
                None => {
                    for (pid, part, _) in &arcs {
                        rec.overrides
                            .insert(*pid, PayloadCell::resident(Arc::clone(part)));
                    }
                }
            }
            shard_heads[s] = self.shards[s].records.len() + 1;
            staged.push((s, rec, arcs));
        }
        let vrec = SnapshotRecord {
            timestamp,
            shard_heads,
            master_delta,
            replica_delta,
            degree_delta,
            removals: delta.removals.len() as u64,
            checkpoint: None,
        };
        // The store-level commit frame: once this is appended, recovery
        // will keep the shard records it points at.
        if let Some(w) = &mut self.wal {
            w.append_store(&encode_apply_frame(&vrec))?;
        }

        // 8. Commit: from here on, pure in-memory mutation — push the
        //    shard records, fold every delta into the current index,
        //    and push the snapshot's layered record.
        let touched: Vec<(usize, usize)> = if self.observer.get().is_some() {
            staged
                .iter()
                .map(|(s, rec, _)| (*s, rec.overrides.len()))
                .collect()
        } else {
            Vec::new()
        };
        for (s, rec, arcs) in staged {
            Arc::make_mut(&mut self.shards[s]).records.push(rec);
            for (pid, part, ver) in arcs {
                self.current.versions.insert(pid, ver);
                self.current.parts.insert(pid, part);
            }
        }
        for (&v, &m) in &vrec.master_delta {
            self.current.master.insert(v, m);
        }
        for (&v, reps) in &vrec.replica_delta {
            self.current.replicas.insert(v, reps.clone());
        }
        for (&v, &d) in &vrec.degree_delta {
            self.current.degree.insert(v, d);
        }
        self.records.push(vrec);

        if self.compaction.due(self.records.len()) {
            self.compact()?;
        }
        self.enforce_capacity()?;
        if let Some(w) = &mut self.wal {
            w.sync_dirty()?;
        }
        if let Some(obs) = self.observer.get() {
            let micros = apply_t0.map_or(0, |t| t.elapsed().as_micros() as u64);
            for &(s, parts) in &touched {
                obs.apply_rebuild(s, timestamp, parts, micros);
                obs.footprint(s, self.shard_resident_bytes(s), self.spilled_bytes[s]);
            }
        }
        Ok(affected.len())
    }

    /// Enforces the per-shard capacity budget: while a shard's resident
    /// chain bytes exceed [`ShardCapacity::max_resident_bytes`], the
    /// coldest (oldest) record strictly below the shard's newest
    /// checkpoint — old deltas and superseded checkpoints alike — has
    /// its payloads spilled, skipping records the permanently resident
    /// tail still wholly shares (spilling those would free nothing,
    /// yet price every read through them).  When nothing is evictable
    /// but the shard is still over budget, one store-wide
    /// [`compact`](Self::compact) materializes fresh checkpoints to
    /// push the eviction horizon to the chain head — and, because that
    /// stamp adds resident bytes to *every* shard, the whole
    /// enforcement pass reruns once.  If the resident tail itself (the
    /// newest checkpoint record and everything after it — the state
    /// every future walk must reach) exceeds the budget, enforcement
    /// stops there.  Spilled data stays materializable (read-through),
    /// so this is purely a cost model — views observe nothing.
    ///
    /// Residency is re-scanned per eviction (distinct-`Arc` accounting
    /// does not subtract incrementally), so a capacity-limited apply
    /// pays O(chain) per spilled record on top of O(Δ).  Checkpoint
    /// cadence bounds the chain, and unlimited capacity (the default)
    /// pays nothing; an incrementally maintained per-shard counter is
    /// the known follow-up if long capped chains ever matter.
    fn enforce_capacity(&mut self) -> Result<(), StoreError> {
        if !self.capacity.is_limited() {
            return Ok(());
        }
        let cap = self.capacity.max_resident_bytes;
        let mut compacted = false;
        // A compact triggered mid-pass grows every shard's resident
        // head, including shards already enforced — one rerun settles
        // them (compact happens at most once per enforcement).
        for _pass in 0..2 {
            let compacted_before = compacted;
            for s in 0..self.shards.len() {
                self.enforce_shard(s, cap, &mut compacted)?;
            }
            if compacted == compacted_before {
                break;
            }
        }
        Ok(())
    }

    /// One shard's spill loop (see [`enforce_capacity`](Self::enforce_capacity)).
    ///
    /// On a durable store a spill is *real*: the event is logged to the
    /// store segment and the record's resident payload copies are
    /// dropped, so any later read through the record rehydrates from
    /// the shard segment (the disk time `bench_durability` measures
    /// against the modeled cost).  In-memory stores keep the payloads —
    /// spill stays the pure cost model it was.
    fn enforce_shard(
        &mut self,
        s: usize,
        cap: u64,
        compacted: &mut bool,
    ) -> Result<(), StoreError> {
        loop {
            if self.shard_resident_bytes(s) <= cap {
                return Ok(());
            }
            match Self::first_evictable(&self.shards[s]) {
                Some(i) => {
                    if let Some(w) = &mut self.wal {
                        w.append_store(&encode_spill_frame(s as u32, i as u64))?;
                    }
                    // Distinct resident payload bytes this spill frees,
                    // measured before the drop (the `Arc`s are gone
                    // after).
                    let freed: u64 = {
                        let rec = &self.shards[s].records[i];
                        let mut seen: HashSet<*const Partition> = HashSet::new();
                        rec.overrides
                            .values()
                            .chain(rec.checkpoint.iter().flat_map(|cp| cp.overrides.values()))
                            .filter_map(PayloadCell::get)
                            .filter(|p| seen.insert(Arc::as_ptr(p)))
                            .map(|p| p.structure_bytes())
                            .sum()
                    };
                    let rec = &mut Arc::make_mut(&mut self.shards[s]).records[i];
                    rec.spilled = true;
                    if self.wal.is_some() {
                        for c in rec.overrides.values_mut() {
                            c.drop_resident();
                        }
                        if let Some(cp) = &mut rec.checkpoint {
                            for c in cp.overrides.values_mut() {
                                c.drop_resident();
                            }
                        }
                    }
                    self.spilled_records += 1;
                    self.spilled_bytes[s] += freed;
                    if let Some(obs) = self.observer.get() {
                        obs.spill(s, freed);
                    }
                }
                None if !*compacted => {
                    // No pre-checkpoint record left to spill: stamp
                    // checkpoints at the heads so everything older
                    // becomes evictable, then retry.
                    self.compact()?;
                    *compacted = true;
                }
                None => return Ok(()),
            }
        }
    }

    /// The oldest record of `shard` still worth spilling: strictly
    /// below the newest checkpoint, not yet spilled, and holding at
    /// least one payload `Arc` the permanently resident tail (the
    /// newest checkpoint record and everything after it) does not also
    /// hold — spilling a record the tail wholly shares frees nothing
    /// yet would price every read through it.
    ///
    /// The spill unit is the whole record, so a record mixing unique
    /// and tail-shared payloads spills wholesale: reads of its shared
    /// payloads are then priced even though those bytes stay resident
    /// via the tail — a deliberate cost-model approximation (the node
    /// dropped the record; serving from the checkpoint copy instead is
    /// the per-payload refinement this leaves as follow-up).
    fn first_evictable(shard: &SnapshotShard) -> Option<usize> {
        // Only materialized payloads matter on both sides: a lazy
        // (recovered, never-read) payload holds no RAM, so it neither
        // anchors anything nor makes its record worth spilling.
        let horizon = shard.newest_checkpoint()?;
        let anchored: HashSet<*const Partition> = shard.records[horizon..]
            .iter()
            .flat_map(|r| {
                r.overrides
                    .values()
                    .filter_map(PayloadCell::get)
                    .map(Arc::as_ptr)
                    .chain(r.checkpoint.iter().flat_map(|cp| {
                        cp.overrides
                            .values()
                            .filter_map(PayloadCell::get)
                            .map(Arc::as_ptr)
                    }))
            })
            .collect();
        shard.records[..horizon].iter().position(|r| {
            !r.spilled
                && r.overrides
                    .values()
                    .chain(r.checkpoint.iter().flat_map(|cp| cp.overrides.values()))
                    .filter_map(PayloadCell::get)
                    .any(|p| !anchored.contains(&Arc::as_ptr(p)))
        })
    }

    /// Whether capacity enforcement could still spill anything from
    /// shard `s` (tests use this to distinguish "over budget with work
    /// left" from the legitimate refusal floor).
    pub fn shard_has_evictable(&self, s: usize) -> bool {
        Self::first_evictable(&self.shards[s]).is_some()
    }

    /// Resident bytes of one shard's chain: every non-spilled record's
    /// map entries and distinct override partition structures, plus all
    /// checkpoint payloads (checkpoints always stay resident — they
    /// terminate walks).  Spilled records keep only their key entries
    /// resident.  The store-global vertex records and current-state
    /// index are not attributed to any shard.
    pub fn shard_resident_bytes(&self, shard: usize) -> u64 {
        const ENTRY: u64 = 16;
        let mut seen: HashSet<*const Partition> = HashSet::new();
        let mut bytes = 0u64;
        let mut count = |o: &HashMap<PartitionId, PayloadCell>,
                         v: &HashMap<PartitionId, VersionId>| {
            let mut b = ENTRY * (o.len() + v.len()) as u64;
            // Only materialized payloads occupy RAM: a lazy recovered
            // cell costs its key entry and nothing more.
            for p in o.values().filter_map(PayloadCell::get) {
                if seen.insert(Arc::as_ptr(p)) {
                    b += p.structure_bytes();
                }
            }
            b
        };
        for rec in &self.shards[shard].records {
            if rec.spilled {
                // Spilled payloads — overrides and checkpoint alike —
                // live in (modeled) spill storage; only key entries
                // stay resident.
                bytes += ENTRY * (rec.overrides.len() + rec.versions.len()) as u64;
                if let Some(cp) = &rec.checkpoint {
                    bytes += ENTRY * (cp.overrides.len() + cp.versions.len()) as u64;
                }
            } else {
                bytes += count(&rec.overrides, &rec.versions);
                if let Some(cp) = &rec.checkpoint {
                    bytes += count(&cp.overrides, &cp.versions);
                }
            }
        }
        bytes
    }

    /// Whether resolving partition `pid` at `record` reads a spilled
    /// record's payload — the spill signal engines price as a disk
    /// re-fetch on the owning shard's lane.  The latest view always
    /// answers from the (resident) current-state index.
    fn spilled_at(&self, record: Option<usize>, pid: PartitionId) -> bool {
        if self.spilled_records == 0 || self.is_latest(record) {
            return false;
        }
        let Some(ri) = record else {
            return false;
        };
        let s = self.shard_of(pid);
        let shard = &self.shards[s];
        let mut h = self.records[ri].shard_heads[s];
        while h > 0 {
            let r = &shard.records[h - 1];
            // Same walk order as `shard_at`: the record's own delta
            // first, then its checkpoint — whichever supplies the
            // partition decides whether the read came from spill
            // storage.
            if r.overrides.contains_key(&pid) {
                return r.spilled;
            }
            if let Some(cp) = &r.checkpoint {
                // A checkpoint terminates the walk; it supplied the
                // partition only if it actually names it (otherwise the
                // resolution falls through to the always-resident base).
                return r.spilled && cp.overrides.contains_key(&pid);
            }
            h -= 1;
        }
        false
    }

    /// Materializes a checkpoint at the newest record of the store and of
    /// every shard chain, capping subsequent historical walks there.
    /// Purely representational: no view observes any difference.  Called
    /// automatically every K deltas under [`CompactionPolicy::EveryK`];
    /// safe (and idempotent) to call manually at any time.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let compact_t0 = self.observer.get().map(|_| Instant::now());
        let mut walked: u64 = 0;
        let Some(last_idx) = self.records.len().checked_sub(1) else {
            return Ok(());
        };
        if self.records[last_idx].checkpoint.is_none() {
            let cp = VertexCheckpoint {
                master: self.current.master.clone(),
                replicas: self.current.replicas.clone(),
                degree: self.current.degree.clone(),
            };
            if let Some(w) = &mut self.wal {
                w.append_store(&encode_vertex_cp_frame(last_idx as u64, &cp))?;
            }
            self.records[last_idx].checkpoint = Some(cp);
        }
        // The cumulative partition state, grouped by owning shard
        // (sorted by pid so durable frames are deterministic).
        let mut per_shard: Vec<Vec<(PartitionId, Arc<Partition>, VersionId)>> =
            vec![Vec::new(); self.shards.len()];
        for (&pid, part) in &self.current.parts {
            let ver = self.current.versions.get(&pid).copied().unwrap_or(0);
            per_shard[self.shard_of(pid)].push((pid, Arc::clone(part), ver));
        }
        for (s, mut arcs) in per_shard.into_iter().enumerate() {
            // A shard's cumulative state only changes when a record is
            // appended to it, so its newest record always equals the
            // current state — stamping there is exact.
            let needs = self.shards[s]
                .records
                .last()
                .is_some_and(|r| r.checkpoint.is_none());
            if !needs {
                continue;
            }
            walked += arcs.len() as u64;
            arcs.sort_unstable_by_key(|&(pid, _, _)| pid);
            let mut cp = ShardCheckpoint::default();
            for &(pid, _, ver) in &arcs {
                cp.versions.insert(pid, ver);
            }
            match &mut self.wal {
                Some(w) => {
                    let rec_idx = (self.shards[s].records.len() - 1) as u64;
                    let (payload, spans) =
                        encode_shard_frame(wal::K_SHARD_CP, Some(rec_idx), &cp.versions, &arcs);
                    let base = w.append_shard(s, &payload)?;
                    for ((pid, part, _), (rel, len)) in arcs.iter().zip(spans) {
                        let loc = PayloadLoc { shard: s as u32, offset: base + rel as u64, len };
                        cp.overrides
                            .insert(*pid, PayloadCell::resident_at(Arc::clone(part), loc));
                    }
                }
                None => {
                    for (pid, part, _) in &arcs {
                        cp.overrides
                            .insert(*pid, PayloadCell::resident(Arc::clone(part)));
                    }
                }
            }
            let shard = Arc::make_mut(&mut self.shards[s]);
            shard
                .records
                .last_mut()
                .expect("needs implies a record")
                .checkpoint = Some(cp);
        }
        if let (Some(obs), Some(t0)) = (self.observer.get(), compact_t0) {
            obs.checkpoint_walk(walked, t0.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// Approximate resident bytes held by the delta chains beyond the
    /// base graph: record and checkpoint map entries, replica lists, the
    /// current-state index, and each *distinct* overridden partition's
    /// structure (counted once however many records reference it).
    pub fn override_bytes(&self) -> u64 {
        // Rough per-entry cost of a small-key/small-value hash map slot.
        const ENTRY: u64 = 16;
        fn vec_bytes(v: &[PartitionId]) -> u64 {
            24 + 4 * v.len() as u64
        }
        fn vertex_maps(
            m: &HashMap<VertexId, PartitionId>,
            r: &HashMap<VertexId, Vec<PartitionId>>,
            d: &HashMap<VertexId, (u32, u32)>,
        ) -> u64 {
            ENTRY * (m.len() + r.len() + d.len()) as u64
                + r.values().map(|v| vec_bytes(v)).sum::<u64>()
        }
        let mut seen: HashSet<*const Partition> = HashSet::new();
        let mut part_maps = |o: &HashMap<PartitionId, PayloadCell>,
                             v: &HashMap<PartitionId, VersionId>| {
            let mut b = ENTRY * (o.len() + v.len()) as u64;
            for p in o.values().filter_map(PayloadCell::get) {
                if seen.insert(Arc::as_ptr(p)) {
                    b += p.structure_bytes();
                }
            }
            b
        };
        let mut bytes = 0u64;
        for rec in &self.records {
            bytes += vertex_maps(&rec.master_delta, &rec.replica_delta, &rec.degree_delta);
            bytes += 8 * rec.shard_heads.len() as u64;
            if let Some(cp) = &rec.checkpoint {
                bytes += vertex_maps(&cp.master, &cp.replicas, &cp.degree);
            }
        }
        for shard in &self.shards {
            for rec in &shard.records {
                if rec.spilled {
                    // Spilled payloads — overrides and checkpoint alike
                    // — live in (modeled) spill storage; only the key
                    // entries stay resident.
                    bytes += ENTRY * (rec.overrides.len() + rec.versions.len()) as u64;
                    if let Some(cp) = &rec.checkpoint {
                        bytes += ENTRY * (cp.overrides.len() + cp.versions.len()) as u64;
                    }
                } else {
                    bytes += part_maps(&rec.overrides, &rec.versions);
                    if let Some(cp) = &rec.checkpoint {
                        bytes += part_maps(&cp.overrides, &cp.versions);
                    }
                }
            }
        }
        bytes += vertex_maps(
            &self.current.master,
            &self.current.replicas,
            &self.current.degree,
        );
        // The current index holds plain `Arc`s (always resident).
        bytes += ENTRY * (self.current.parts.len() + self.current.versions.len()) as u64;
        for p in self.current.parts.values() {
            if seen.insert(Arc::as_ptr(p)) {
                bytes += p.structure_bytes();
            }
        }
        bytes
    }

    // ---- durability -------------------------------------------------

    /// Whether this store has an open durability layer.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The directory the store's segments live in, when durable.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.wal.as_ref().map(|w| w.dir())
    }

    /// Attaches a durability layer: creates `dir` (manifest, base
    /// segment, and empty store/shard segments, all fsync'd) and
    /// returns the store with every subsequent [`apply`](Self::apply) /
    /// [`compact`](Self::compact) / spill logged through it.
    ///
    /// # Panics
    ///
    /// Panics if any snapshot was already applied: the log must hold
    /// the *whole* delta history, so durability attaches at the base.
    pub fn persist_to(mut self, dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        assert!(
            self.records.is_empty(),
            "persist_to must be called before any delta is applied"
        );
        let manifest = encode_manifest_frame(&self);
        let base_frames = encode_base_frames(&self.base);
        let mut wal = StoreWal::create(dir.as_ref(), self.shards.len(), &manifest, &base_frames)?;
        if let Some(obs) = self.observer.clone_arc() {
            wal.set_observer(obs);
        }
        self.wal = Some(wal);
        Ok(self)
    }

    /// Drops this store and re-opens it from its own directory — the
    /// in-process equivalent of a crash-restart, used by the
    /// kill-and-recover suites.
    pub fn recover(self) -> Result<Self, StoreError> {
        let Some(w) = &self.wal else {
            return Err(StoreError::Io(std::io::Error::other(
                "recover() requires a durable store (persist_to/open)",
            )));
        };
        let dir = w.dir().to_path_buf();
        drop(self);
        Self::open(dir)
    }

    /// Re-opens a durable store from `dir` by replaying its segments.
    ///
    /// Recovery rebuilds everything — the vertex and shard delta
    /// chains, checkpoints, spill flags, and the incremental
    /// [`CurrentIndex`] — from the logs, truncating any torn tail or
    /// uncommitted suffix (shard frames whose store-level commit frame
    /// never hit the disk) so the result is exactly the newest
    /// committed prefix.  Mid-log corruption is refused with a typed
    /// [`StoreError`]; nothing panics on bad bytes.
    ///
    /// To make recovery O(post-checkpoint) rather than O(chain),
    /// partition payloads strictly below a shard's newest checkpoint
    /// stay *lazy* — their frame boundaries are header-verified and
    /// their offsets recorded, but their payloads are neither
    /// checksummed nor decoded at open: like spilled records, they
    /// read through (and re-verify) only if a historical walk actually
    /// reaches them.  The commit log (`store.seg`), manifest, and base
    /// are always fully verified.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let replay_t0 = Instant::now();
        let dir = dir.as_ref();
        // Manifest and base are write-once at persist time; a torn one
        // means the store never durably existed.
        let m = scan_segment(&wal::manifest_path(dir), SegmentId::Manifest)?;
        if m.torn || m.frames.is_empty() {
            return Err(StoreError::Truncated { segment: SegmentId::Manifest, len: m.clean_len });
        }
        let manifest = decode_manifest_frame(&m.frames[0])?;
        let b = scan_segment(&wal::base_path(dir), SegmentId::Base)?;
        if b.torn {
            return Err(StoreError::Truncated { segment: SegmentId::Base, len: b.clean_len });
        }
        let base = decode_base_frames(&b.frames, &manifest)?;

        // Appendable segments: scan (tolerating torn tails), parse
        // frames into events, then reconcile the two levels into the
        // newest committed prefix.  The store segment (commit log) is
        // fully read and verified; shard segments stream header + frame
        // metadata only, leaving partition payload bytes on disk until
        // — unless — a frame decodes eagerly below, so recovery I/O
        // tracks the post-checkpoint tail, not the chain.
        let store_scan = scan_segment(&wal::store_path(dir), SegmentId::Store)?;
        let mut shard_cursors: Vec<FrameCursor> = Vec::with_capacity(manifest.shards);
        let mut shard_frames: Vec<Vec<FrameHead>> = Vec::with_capacity(manifest.shards);
        let mut shard_events: Vec<Vec<ShardEvent>> = Vec::with_capacity(manifest.shards);
        for s in 0..manifest.shards {
            let seg = SegmentId::Shard(s as u32);
            let (events, heads, cursor) = scan_shard_frames(&wal::shard_path(dir, s), seg)?;
            shard_events.push(events);
            shard_frames.push(heads);
            shard_cursors.push(cursor);
        }
        let store_events: Vec<StoreEvent> = store_scan
            .frames
            .iter()
            .enumerate()
            .map(|(i, f)| parse_store_frame(i, f))
            .collect::<Result<_, _>>()?;

        // Store-level prefix cut: an event is kept only while it is
        // consistent with everything kept before it AND with the shard
        // records that actually survived.  The first inconsistent event
        // starts the discarded crash suffix.
        let avail: Vec<usize> = shard_events
            .iter()
            .map(|evs| evs.iter().filter(|e| e.cp_rec_idx.is_none()).count())
            .collect();
        let mut heads = vec![0usize; manifest.shards];
        let mut last_ts = 0u64;
        let mut kept_applies = 0usize;
        let mut store_cut = wal::SEG_HEADER_LEN;
        let mut spills: Vec<(u32, u64)> = Vec::new();
        let mut vertex_cps: Vec<(usize, usize)> = Vec::new();
        let mut records: Vec<SnapshotRecord> = Vec::new();
        for ev in store_events {
            match ev {
                StoreEvent::Apply(rec, end) => {
                    let consistent = rec.timestamp > last_ts
                        && rec.shard_heads.len() == manifest.shards
                        && rec
                            .shard_heads
                            .iter()
                            .zip(&heads)
                            .all(|(&new, &old)| new >= old)
                        && rec.shard_heads.iter().zip(&avail).all(|(&h, &a)| h <= a);
                    if !consistent {
                        break;
                    }
                    last_ts = rec.timestamp;
                    heads.copy_from_slice(&rec.shard_heads);
                    records.push(*rec);
                    kept_applies += 1;
                    store_cut = end;
                }
                StoreEvent::VertexCp { rec_idx, frame, end } => {
                    if kept_applies == 0 || rec_idx as usize != kept_applies - 1 {
                        break;
                    }
                    vertex_cps.push((rec_idx as usize, frame));
                    store_cut = end;
                }
                StoreEvent::Spill { shard, rec, end } => {
                    if shard as usize >= manifest.shards || rec >= heads[shard as usize] as u64 {
                        break;
                    }
                    spills.push((shard, rec));
                    store_cut = end;
                }
            }
        }

        // Shard-level prefix cut: keep records up to the heads the
        // committed applies reference, and checkpoints stamped on a
        // kept record's chain position; everything after the first
        // stray frame (an uncommitted apply's leftovers) is cut.
        let mut shard_cuts = vec![wal::SEG_HEADER_LEN; manifest.shards];
        let mut kept_shard_events: Vec<Vec<ShardEvent>> = Vec::with_capacity(manifest.shards);
        for (s, events) in shard_events.into_iter().enumerate() {
            let mut kept = Vec::with_capacity(events.len());
            let mut recs_seen = 0usize;
            for ev in events {
                match ev.cp_rec_idx {
                    None => {
                        if recs_seen >= heads[s] {
                            break;
                        }
                        recs_seen += 1;
                    }
                    Some(idx) => {
                        if recs_seen == 0 || idx as usize != recs_seen - 1 {
                            break;
                        }
                    }
                }
                shard_cuts[s] = ev.end;
                kept.push(ev);
            }
            kept_shard_events.push(kept);
        }

        // The cuts are final: truncate the crash suffix now and attach
        // the append/read handles (the eager decodes below read through
        // them).
        let wal = StoreWal::open_clean(dir.to_path_buf(), store_cut, &shard_cuts)?;

        // Rebuild the shard chains.  Records at or after a shard's
        // newest checkpoint (and that checkpoint itself) decode
        // eagerly, deduplicated by (pid, version) so the recovered tail
        // shares payload `Arc`s like the survivor did; everything older
        // stays lazy.
        let mut cache: HashMap<(PartitionId, VersionId), Arc<Partition>> = HashMap::new();
        let mut shards: Vec<Arc<SnapshotShard>> = Vec::with_capacity(manifest.shards);
        for (s, events) in kept_shard_events.iter().enumerate() {
            let seg = SegmentId::Shard(s as u32);
            let cursor = &mut shard_cursors[s];
            let heads = &shard_frames[s];
            let newest_cp: Option<usize> = events
                .iter()
                .rev()
                .find_map(|e| e.cp_rec_idx.map(|i| i as usize));
            let mut recs: Vec<ShardRecord> = Vec::new();
            for (fi, ev) in events.iter().enumerate() {
                let (slot_cp, eager) = match ev.cp_rec_idx {
                    None => {
                        let i = recs.len();
                        (None, newest_cp.is_none_or(|c| i >= c))
                    }
                    Some(idx) => (Some(idx as usize), newest_cp == Some(idx as usize)),
                };
                // An eager frame's payload is pulled off disk (and its
                // deferred CRC settled) exactly when its bytes are about
                // to become state; lazy frames stay unread.
                let payload: Option<Vec<u8>> = if eager {
                    Some(cursor.read_payload(&heads[fi])?)
                } else {
                    None
                };
                let mut overrides: HashMap<PartitionId, PayloadCell> =
                    HashMap::with_capacity(ev.parts.len());
                for &(pid, offset, len) in &ev.parts {
                    let loc = PayloadLoc { shard: s as u32, offset, len };
                    let cell = if let Some(buf) = &payload {
                        let ver = *ev.versions.get(&pid).ok_or(StoreError::Corruption {
                            segment: seg,
                            offset,
                            detail: "shard frame payload without a version entry",
                        })?;
                        let arc = match cache.get(&(pid, ver)) {
                            Some(a) => Arc::clone(a),
                            None => {
                                let rel = (offset - heads[fi].payload_offset) as usize;
                                let mut r =
                                    WireReader::new(&buf[rel..rel + len as usize], seg, offset);
                                let a = Arc::new(Partition::decode(&mut r)?);
                                cache.insert((pid, ver), Arc::clone(&a));
                                a
                            }
                        };
                        PayloadCell::resident_at(arc, loc)
                    } else {
                        PayloadCell::lazy(loc)
                    };
                    overrides.insert(pid, cell);
                }
                match slot_cp {
                    None => recs.push(ShardRecord {
                        overrides,
                        versions: ev.versions.clone(),
                        checkpoint: None,
                        spilled: false,
                    }),
                    Some(idx) => {
                        recs[idx].checkpoint =
                            Some(ShardCheckpoint { overrides, versions: ev.versions.clone() });
                    }
                }
            }
            shards.push(Arc::new(SnapshotShard { records: recs }));
        }

        // Vertex level: materialize only the newest kept checkpoint —
        // the one that seeds the current index.  Older checkpoints are
        // walk-bounding representation, not state; decoding each
        // cumulative map would make recovery O(checkpoints × vertices)
        // again, so they stay CRC-verified-but-undecoded and vertex
        // walks from old pinned views just run to the base.
        if let Some(&(idx, frame)) = vertex_cps.last() {
            records[idx].checkpoint = Some(decode_vertex_checkpoint(&store_scan.frames[frame])?);
        }
        let mut spilled_records = 0usize;
        for (sh, rec) in spills {
            let shard = Arc::make_mut(&mut shards[sh as usize]);
            let r = &mut shard.records[rec as usize];
            if !r.spilled {
                r.spilled = true;
                spilled_records += 1;
            }
            for c in r.overrides.values_mut() {
                c.drop_resident();
            }
            if let Some(cp) = &mut r.checkpoint {
                for c in cp.overrides.values_mut() {
                    c.drop_resident();
                }
            }
        }

        // The current index: seed from the newest checkpoints, fold
        // only the post-checkpoint records — O(post-checkpoint), the
        // recovery speedup `bench_durability` gates.
        let mut current = CurrentIndex::default();
        let vertex_from = match records.iter().rposition(|r| r.checkpoint.is_some()) {
            Some(i) => {
                let cp = records[i].checkpoint.as_ref().expect("just found");
                current.master = cp.master.clone();
                current.replicas = cp.replicas.clone();
                current.degree = cp.degree.clone();
                i + 1
            }
            None => 0,
        };
        for rec in &records[vertex_from..] {
            for (&v, &m) in &rec.master_delta {
                current.master.insert(v, m);
            }
            for (&v, reps) in &rec.replica_delta {
                current.replicas.insert(v, reps.clone());
            }
            for (&v, &d) in &rec.degree_delta {
                current.degree.insert(v, d);
            }
        }
        for shard in &shards {
            let from = match shard.newest_checkpoint() {
                Some(i) => {
                    let cp = shard.records[i].checkpoint.as_ref().expect("just found");
                    for (&pid, cell) in &cp.overrides {
                        let arc = cell.get().expect("newest checkpoint decodes eagerly");
                        current.parts.insert(pid, Arc::clone(arc));
                    }
                    for (&pid, &ver) in &cp.versions {
                        current.versions.insert(pid, ver);
                    }
                    i + 1
                }
                None => 0,
            };
            for rec in &shard.records[from..] {
                for (&pid, cell) in &rec.overrides {
                    let arc = cell.get().expect("post-checkpoint records decode eagerly");
                    current.parts.insert(pid, Arc::clone(arc));
                }
                for (&pid, &ver) in &rec.versions {
                    current.versions.insert(pid, ver);
                }
            }
        }

        // What this open replayed: every kept frame across the commit
        // log and shard segments, and the committed bytes they span.
        // Held until an observer attaches (none can exist yet).
        let num_shards = shards.len();
        let replay = ReplayStats {
            frames: (store_scan.frames.len() + shard_frames.iter().map(Vec::len).sum::<usize>())
                as u64,
            bytes: store_cut + shard_cuts.iter().sum::<u64>(),
            micros: replay_t0.elapsed().as_micros() as u64,
        };
        Ok(ShardedSnapshotStore {
            base,
            shards,
            placement: manifest.placement,
            records,
            current,
            compaction: manifest.compaction,
            capacity: manifest.capacity,
            apply_workers: 1,
            apply_edges_per_worker: DEFAULT_APPLY_EDGES_PER_WORKER,
            spilled_records,
            wal: Some(wal),
            observer: ObsHandle::none(),
            faults: FaultHandle::none(),
            spilled_bytes: vec![0; num_shards],
            replay: Some(replay),
        })
    }

    /// A view of the newest snapshot.
    pub fn latest(self: &Arc<Self>) -> GraphView {
        GraphView { store: Arc::clone(self), record: self.records.len().checked_sub(1) }
    }

    /// A view of the base graph (timestamp 0).
    pub fn base_view(self: &Arc<Self>) -> GraphView {
        GraphView { store: Arc::clone(self), record: None }
    }

    /// The view a job arriving at `ts` binds to: the newest snapshot whose
    /// timestamp does not exceed `ts`.
    pub fn view_at(self: &Arc<Self>, ts: u64) -> GraphView {
        // Same partition point as `snapshot_at`: timestamps are strictly
        // ascending, so no linear scan.
        let idx = self.records.partition_point(|r| r.timestamp <= ts);
        GraphView { store: Arc::clone(self), record: idx.checked_sub(1) }
    }

    /// Every applied snapshot's timestamp, ascending (the base at
    /// timestamp 0 is implicit and not listed).  The serve layer's
    /// standing jobs walk this list to emit one result per version.
    pub fn snapshot_timestamps(&self) -> Vec<u64> {
        self.records.iter().map(|r| r.timestamp).collect()
    }

    /// Summarizes every delta applied strictly after the snapshot bound
    /// at `from_ts` up to and including the one bound at `to_ts` — the
    /// O(Δ) seed of an incremental resume.  Both arguments are *arrival*
    /// timestamps resolved with the same inclusive partition point as
    /// [`view_at`](Self::view_at) / [`snapshot_at`](Self::snapshot_at),
    /// so a resume binds exactly the version a from-scratch submission
    /// at `to_ts` would.
    ///
    /// Returns `None` when `from_ts` binds a *newer* snapshot than
    /// `to_ts` (a prior result cannot seed a run backwards in time).
    /// Equal binds yield an empty summary: nothing changed, the prior
    /// result already is the answer.
    pub fn delta_summary(&self, from_ts: u64, to_ts: u64) -> Option<DeltaSummary> {
        let from = self.records.partition_point(|r| r.timestamp <= from_ts);
        let to = self.records.partition_point(|r| r.timestamp <= to_ts);
        if from > to {
            return None;
        }
        let mut touched: Vec<VertexId> = Vec::new();
        let mut removals = 0u64;
        for rec in &self.records[from..to] {
            // `apply` keys an entry for *every* endpoint of every added
            // and removed edge (even when the net degree change is 0),
            // so the key set is exactly the incident-vertex frontier.
            touched.extend(rec.degree_delta.keys().copied());
            removals += rec.removals;
        }
        touched.sort_unstable();
        touched.dedup();
        Some(DeltaSummary { touched, removals, deltas: (to - from) as u64 })
    }
}

/// What changed between two snapshot bind points — the seed of an
/// incremental resume (see [`ShardedSnapshotStore::delta_summary`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Every vertex incident to an added or removed edge in the range,
    /// sorted ascending and deduplicated.
    pub touched: Vec<VertexId>,
    /// Total edge removals in the range.  Any removal can shrink a
    /// monotone program's fixpoint, so a nonzero count means the resume
    /// must fall back to from-scratch evaluation.
    pub removals: u64,
    /// Number of snapshot records the range spans.
    pub deltas: u64,
}

impl DeltaSummary {
    /// Whether the range carried no edge changes at all.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty() && self.removals == 0
    }

    /// Whether a monotone program may resume from the prior result
    /// (addition-only range; removals force from-scratch).
    pub fn monotone_safe(&self) -> bool {
        self.removals == 0
    }
}

// ---------------------------------------------------------------------
// Durable frame codec.
//
// Every map is serialized sorted by key, and `apply` stages shards in
// ascending id with their partitions sorted by pid, so the byte stream
// for a given store history is fully deterministic — which is what lets
// the kill-and-recover suites compare a recovered store against the
// survivor structurally.
// ---------------------------------------------------------------------

/// The decoded `MANIFEST`: the configuration a durable store directory
/// was created with.
struct Manifest {
    shards: usize,
    num_partitions: usize,
    compaction: CompactionPolicy,
    capacity: ShardCapacity,
    placement: ShardPlacement,
}

fn encode_manifest_frame(store: &ShardedSnapshotStore) -> Vec<u8> {
    let mut out = vec![wal::K_MANIFEST];
    wal::put_u32(&mut out, store.shards.len() as u32);
    wal::put_u32(&mut out, store.base.num_partitions() as u32);
    match store.compaction {
        CompactionPolicy::Off => {
            wal::put_u8(&mut out, 0);
            wal::put_u64(&mut out, 0);
        }
        CompactionPolicy::EveryK(k) => {
            wal::put_u8(&mut out, 1);
            wal::put_u64(&mut out, k as u64);
        }
    }
    wal::put_u64(&mut out, store.capacity.max_resident_bytes);
    match &store.placement {
        ShardPlacement::RoundRobin => wal::put_u8(&mut out, 0),
        ShardPlacement::Hash => wal::put_u8(&mut out, 1),
        ShardPlacement::Locality(table) => {
            wal::put_u8(&mut out, 2);
            wal::put_u32(&mut out, table.len() as u32);
            for &s in table.iter() {
                wal::put_u32(&mut out, s);
            }
        }
    }
    out
}

fn decode_manifest_frame(f: &Frame) -> Result<Manifest, StoreError> {
    let mut r = f.body(SegmentId::Manifest);
    if f.kind() != wal::K_MANIFEST {
        return Err(r.corrupt("expected a manifest frame"));
    }
    let shards = r.u32()? as usize;
    let num_partitions = r.u32()? as usize;
    let compaction = match r.u8()? {
        0 => {
            r.u64()?;
            CompactionPolicy::Off
        }
        1 => CompactionPolicy::EveryK(r.u64()? as usize),
        _ => return Err(r.corrupt("unknown compaction policy tag")),
    };
    let capacity = ShardCapacity { max_resident_bytes: r.u64()? };
    let placement = match r.u8()? {
        0 => ShardPlacement::RoundRobin,
        1 => ShardPlacement::Hash,
        2 => {
            let n = r.len(4)?;
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                table.push(r.u32()?);
            }
            ShardPlacement::Locality(table.into())
        }
        _ => return Err(r.corrupt("unknown placement tag")),
    };
    if shards == 0 || r.remaining() != 0 {
        return Err(r.corrupt("malformed manifest"));
    }
    Ok(Manifest { shards, num_partitions, compaction, capacity, placement })
}

/// The base partition set as write-once frames: one meta frame (the
/// replica tables) followed by one frame per partition, in id order.
fn encode_base_frames(base: &PartitionSet) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(1 + base.num_partitions());
    let mut meta = vec![wal::K_BASE_META];
    base.encode_meta(&mut meta);
    frames.push(meta);
    for pid in 0..base.num_partitions() as PartitionId {
        let mut f = vec![wal::K_BASE_PART];
        base.partition(pid).encode(&mut f);
        frames.push(f);
    }
    frames
}

fn decode_base_frames(frames: &[Frame], manifest: &Manifest) -> Result<PartitionSet, StoreError> {
    let expect = 1 + manifest.num_partitions;
    if frames.len() != expect {
        return Err(StoreError::Corruption {
            segment: SegmentId::Base,
            offset: frames.last().map_or(wal::SEG_HEADER_LEN, |f| f.end_offset),
            detail: "base segment frame count disagrees with the manifest",
        });
    }
    let mut parts = Vec::with_capacity(manifest.num_partitions);
    for f in &frames[1..] {
        let mut r = f.body(SegmentId::Base);
        if f.kind() != wal::K_BASE_PART {
            return Err(r.corrupt("expected a base partition frame"));
        }
        parts.push(Arc::new(Partition::decode(&mut r)?));
    }
    let mut r = frames[0].body(SegmentId::Base);
    if frames[0].kind() != wal::K_BASE_META {
        return Err(r.corrupt("expected the base meta frame"));
    }
    PartitionSet::decode_meta(&mut r, parts)
}

// Sorted-map wire helpers (see the section comment: deterministic byte
// streams require a fixed entry order).

fn put_master_map(out: &mut Vec<u8>, m: &HashMap<VertexId, PartitionId>) {
    let mut entries: Vec<(VertexId, PartitionId)> = m.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    wal::put_u32(out, entries.len() as u32);
    for (v, p) in entries {
        wal::put_u32(out, v);
        wal::put_u32(out, p);
    }
}

fn read_master_map(r: &mut WireReader<'_>) -> Result<HashMap<VertexId, PartitionId>, StoreError> {
    let n = r.len(8)?;
    let mut m = HashMap::with_capacity(n);
    for _ in 0..n {
        let v = r.u32()?;
        let p = r.u32()?;
        m.insert(v, p);
    }
    Ok(m)
}

fn put_replica_map(out: &mut Vec<u8>, m: &HashMap<VertexId, Vec<PartitionId>>) {
    let mut entries: Vec<(VertexId, &Vec<PartitionId>)> = m.iter().map(|(&k, v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(v, _)| v);
    wal::put_u32(out, entries.len() as u32);
    for (v, reps) in entries {
        wal::put_u32(out, v);
        wal::put_u32(out, reps.len() as u32);
        for &p in reps {
            wal::put_u32(out, p);
        }
    }
}

fn read_replica_map(
    r: &mut WireReader<'_>,
) -> Result<HashMap<VertexId, Vec<PartitionId>>, StoreError> {
    let n = r.len(8)?;
    let mut m = HashMap::with_capacity(n);
    for _ in 0..n {
        let v = r.u32()?;
        let k = r.len(4)?;
        let mut reps = Vec::with_capacity(k);
        for _ in 0..k {
            reps.push(r.u32()?);
        }
        m.insert(v, reps);
    }
    Ok(m)
}

fn put_degree_map(out: &mut Vec<u8>, m: &HashMap<VertexId, (u32, u32)>) {
    let mut entries: Vec<(VertexId, (u32, u32))> = m.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(v, _)| v);
    wal::put_u32(out, entries.len() as u32);
    for (v, (o, i)) in entries {
        wal::put_u32(out, v);
        wal::put_u32(out, o);
        wal::put_u32(out, i);
    }
}

fn read_degree_map(r: &mut WireReader<'_>) -> Result<HashMap<VertexId, (u32, u32)>, StoreError> {
    let n = r.len(12)?;
    let mut m = HashMap::with_capacity(n);
    for _ in 0..n {
        let v = r.u32()?;
        let o = r.u32()?;
        let i = r.u32()?;
        m.insert(v, (o, i));
    }
    Ok(m)
}

fn put_version_map(out: &mut Vec<u8>, m: &HashMap<PartitionId, VersionId>) {
    let mut entries: Vec<(PartitionId, VersionId)> = m.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    wal::put_u32(out, entries.len() as u32);
    for (p, v) in entries {
        wal::put_u32(out, p);
        wal::put_u32(out, v);
    }
}

/// The store-level commit frame for one apply: the vertex deltas plus
/// the shard heads this snapshot sees.  Once this frame is durable the
/// shard records it references are committed (they were synced first).
fn encode_apply_frame(rec: &SnapshotRecord) -> Vec<u8> {
    let mut out = vec![wal::K_APPLY];
    wal::put_u64(&mut out, rec.timestamp);
    wal::put_u32(&mut out, rec.shard_heads.len() as u32);
    for &h in &rec.shard_heads {
        wal::put_u64(&mut out, h as u64);
    }
    put_master_map(&mut out, &rec.master_delta);
    put_replica_map(&mut out, &rec.replica_delta);
    put_degree_map(&mut out, &rec.degree_delta);
    wal::put_u64(&mut out, rec.removals);
    out
}

fn encode_vertex_cp_frame(rec_idx: u64, cp: &VertexCheckpoint) -> Vec<u8> {
    let mut out = vec![wal::K_VERTEX_CP];
    wal::put_u64(&mut out, rec_idx);
    put_master_map(&mut out, &cp.master);
    put_replica_map(&mut out, &cp.replicas);
    put_degree_map(&mut out, &cp.degree);
    out
}

fn encode_spill_frame(shard: u32, rec: u64) -> Vec<u8> {
    let mut out = vec![wal::K_SPILL];
    wal::put_u32(&mut out, shard);
    wal::put_u64(&mut out, rec);
    out
}

/// Encodes one shard frame (a record's overrides, or a checkpoint's
/// cumulative state): the version map, then each partition blob.
/// Returns the payload plus one `(offset, len)` span per entry of
/// `arcs` (offsets relative to the payload start), which `apply` /
/// `compact` turn into [`PayloadLoc`]s once the frame's disk position
/// is known.
fn encode_shard_frame(
    kind: u8,
    rec_idx: Option<u64>,
    versions: &HashMap<PartitionId, VersionId>,
    arcs: &[(PartitionId, Arc<Partition>, VersionId)],
) -> (Vec<u8>, Vec<(u32, u32)>) {
    let mut out = vec![kind];
    if let Some(idx) = rec_idx {
        wal::put_u64(&mut out, idx);
    }
    put_version_map(&mut out, versions);
    wal::put_u32(&mut out, arcs.len() as u32);
    let mut spans = Vec::with_capacity(arcs.len());
    for (pid, part, _) in arcs {
        wal::put_u32(&mut out, *pid);
        let len_at = out.len();
        wal::put_u32(&mut out, 0); // blob length, patched below
        let start = out.len();
        part.encode(&mut out);
        let blob = (out.len() - start) as u32;
        out[len_at..len_at + 4].copy_from_slice(&blob.to_le_bytes());
        spans.push((start as u32, blob));
    }
    (out, spans)
}

// ---------------------------------------------------------------------
// Recovery-side frame parsers.
// ---------------------------------------------------------------------

/// One parsed store-segment frame (`end` = segment offset one past the
/// frame, the truncation point if the prefix cut lands here).
enum StoreEvent {
    Apply(Box<SnapshotRecord>, u64),
    VertexCp {
        rec_idx: u64,
        frame: usize,
        end: u64,
    },
    Spill {
        shard: u32,
        rec: u64,
        end: u64,
    },
}

fn parse_store_frame(frame: usize, f: &Frame) -> Result<StoreEvent, StoreError> {
    let mut r = f.body(SegmentId::Store);
    let ev = match f.kind() {
        wal::K_APPLY => {
            let timestamp = r.u64()?;
            let n = r.len(8)?;
            let mut shard_heads = Vec::with_capacity(n);
            for _ in 0..n {
                shard_heads.push(r.u64()? as usize);
            }
            let master_delta = read_master_map(&mut r)?;
            let replica_delta = read_replica_map(&mut r)?;
            let degree_delta = read_degree_map(&mut r)?;
            let removals = r.u64()?;
            StoreEvent::Apply(
                Box::new(SnapshotRecord {
                    timestamp,
                    shard_heads,
                    master_delta,
                    replica_delta,
                    degree_delta,
                    removals,
                    checkpoint: None,
                }),
                f.end_offset,
            )
        }
        wal::K_VERTEX_CP => {
            // Only the stamp target is read here; the cumulative maps
            // stay undecoded until [`decode_vertex_checkpoint`] — and
            // only the newest kept checkpoint ever is.
            let rec_idx = r.u64()?;
            return Ok(StoreEvent::VertexCp { rec_idx, frame, end: f.end_offset });
        }
        wal::K_SPILL => {
            let shard = r.u32()?;
            let rec = r.u64()?;
            StoreEvent::Spill { shard, rec, end: f.end_offset }
        }
        _ => return Err(r.corrupt("unknown store frame kind")),
    };
    if r.remaining() != 0 {
        return Err(r.corrupt("trailing bytes after store frame body"));
    }
    Ok(ev)
}

/// Decodes the cumulative vertex state out of a `K_VERTEX_CP` frame.
/// Recovery calls this for the newest kept checkpoint only: older
/// checkpoints are pure walk-bounding representation, so their
/// CRC-verified payloads are dropped undecoded (a walk that would have
/// stopped at one simply continues to the base — same answers, longer
/// walk, exactly the [`CompactionPolicy`] transparency contract).
fn decode_vertex_checkpoint(f: &Frame) -> Result<VertexCheckpoint, StoreError> {
    let mut r = f.body(SegmentId::Store);
    let _rec_idx = r.u64()?;
    let cp = VertexCheckpoint {
        master: read_master_map(&mut r)?,
        replicas: read_replica_map(&mut r)?,
        degree: read_degree_map(&mut r)?,
    };
    if r.remaining() != 0 {
        return Err(r.corrupt("trailing bytes after store frame body"));
    }
    Ok(cp)
}

/// One parsed shard-segment frame: a chain record (`cp_rec_idx` =
/// `None`) or a checkpoint stamped onto record `cp_rec_idx`.  Partition
/// payloads are *not* decoded here — only their absolute segment spans,
/// so recovery can leave cold ones lazy.
struct ShardEvent {
    cp_rec_idx: Option<u64>,
    versions: HashMap<PartitionId, VersionId>,
    /// `(pid, absolute segment offset, len)` per partition blob.
    parts: Vec<(PartitionId, u64, u32)>,
    /// Segment offset one past the frame.
    end: u64,
}

/// Streams every frame of a shard segment into events, reading only
/// frame headers and metadata — kind, version map, and the partition
/// (pid, offset, length) table — while seeking past the partition
/// payload bytes themselves.  Field reads are bounds-checked against
/// the header-vouched frame length, so malformed metadata surfaces as
/// typed corruption; payload bit rot is caught by
/// [`FrameCursor::read_payload`] when (and only when) a frame decodes
/// eagerly, or at read-through for payloads kept lazy.  Returns the
/// cursor alongside the events so recovery can pull eager payloads
/// through the same handle.
fn scan_shard_frames(
    path: &Path,
    seg: SegmentId,
) -> Result<(Vec<ShardEvent>, Vec<FrameHead>, FrameCursor), StoreError> {
    fn bounded(cur: &FrameCursor, end: u64, need: u64) -> Result<(), StoreError> {
        if cur.pos() + need > end {
            return Err(cur.corrupt_at(cur.pos(), "payload shorter than its encoding claims"));
        }
        Ok(())
    }
    fn bounded_len(cur: &mut FrameCursor, end: u64, min_elem: u64) -> Result<usize, StoreError> {
        bounded(cur, end, 4)?;
        let n = cur.u32()? as u64;
        if n.saturating_mul(min_elem.max(1)) > end - cur.pos() {
            return Err(cur.corrupt_at(cur.pos(), "length field exceeds remaining payload"));
        }
        Ok(n as usize)
    }
    let mut cur = FrameCursor::open(path, seg)?;
    let mut events = Vec::new();
    let mut heads = Vec::new();
    while let Some(head) = cur.next_frame()? {
        let end = head.end_offset;
        if head.payload_len == 0 {
            return Err(cur.corrupt_at(head.payload_offset, "empty shard frame payload"));
        }
        let cp_rec_idx = match cur.u8()? {
            wal::K_SHARD_REC => None,
            wal::K_SHARD_CP => {
                bounded(&cur, end, 8)?;
                Some(cur.u64()?)
            }
            _ => return Err(cur.corrupt_at(head.payload_offset, "unknown shard frame kind")),
        };
        let vn = bounded_len(&mut cur, end, 8)?;
        let mut versions = HashMap::with_capacity(vn);
        for _ in 0..vn {
            let p = cur.u32()?;
            let v = cur.u32()?;
            versions.insert(p, v);
        }
        let n = bounded_len(&mut cur, end, 8)?;
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            bounded(&cur, end, 8)?;
            let pid = cur.u32()?;
            let len = cur.u32()?;
            let at = cur.pos();
            if at + len as u64 > end {
                return Err(cur.corrupt_at(at, "payload shorter than its encoding claims"));
            }
            cur.skip(len as u64)?;
            parts.push((pid, at, len));
        }
        if cur.pos() != end {
            return Err(cur.corrupt_at(cur.pos(), "trailing bytes after shard frame body"));
        }
        events.push(ShardEvent { cp_rec_idx, versions, parts, end });
        heads.push(head);
    }
    Ok((events, heads, cur))
}

/// A consistent, immutable view of the graph at one snapshot.
///
/// Views resolve partition state across the store's shards
/// transparently: a lookup at the newest snapshot is answered by the
/// store's current-state index in O(1); a historical lookup walks the
/// owning chain backwards from this snapshot's head, stopping at the
/// first record that names the key or carries a checkpoint (so the walk
/// is bounded by the store's [`CompactionPolicy`]).  Callers never see
/// the sharding or the layering.
#[derive(Clone, Debug)]
pub struct GraphView {
    store: Arc<SnapshotStore>,
    /// Index into the record chain; `None` means the base.
    record: Option<usize>,
}

impl GraphView {
    fn rec(&self) -> Option<&SnapshotRecord> {
        self.record.map(|i| &self.store.records[i])
    }

    /// The snapshot timestamp this view observes (0 for the base).
    pub fn timestamp(&self) -> u64 {
        self.rec().map_or(0, |r| r.timestamp)
    }

    /// Number of partitions (fixed across snapshots).
    pub fn num_partitions(&self) -> usize {
        self.store.base.num_partitions()
    }

    /// Size of the vertex universe (fixed across snapshots).
    pub fn num_vertices(&self) -> VertexId {
        self.store.base.num_vertices()
    }

    /// Number of shards of the underlying store.
    pub fn num_shards(&self) -> usize {
        self.store.num_shards()
    }

    /// The shard partition `pid` is placed on.
    pub fn shard_of(&self, pid: PartitionId) -> usize {
        self.store.shard_of(pid)
    }

    /// The partition `pid` as seen by this view (resolved through the
    /// owning shard's chain).
    pub fn partition(&self, pid: PartitionId) -> &Arc<Partition> {
        self.store.partition_at(self.record, pid)
    }

    /// The version of partition `pid` (0 = base).  Two views share the
    /// physical partition — and therefore its cache residency — exactly
    /// when their versions match.
    pub fn version_of(&self, pid: PartitionId) -> VersionId {
        self.store.version_at(self.record, pid)
    }

    /// Whether this view resolves partition `pid` through a record
    /// whose payload capacity enforcement spilled — the signal engines
    /// price as a disk re-fetch on the owning shard's lane.  Free
    /// (`false` immediately) while the store has never spilled.
    pub fn partition_spilled(&self, pid: PartitionId) -> bool {
        self.store.spilled_at(self.record, pid)
    }

    /// Master partition of `v` in this view.
    pub fn master_of(&self, v: VertexId) -> PartitionId {
        self.store.master_at(self.record, v)
    }

    /// Replica partitions of `v` in this view.
    pub fn replicas_of(&self, v: VertexId) -> &[PartitionId] {
        self.store.replicas_at(self.record, v)
    }

    /// Whole-graph out/in degree of `v` in this view.
    pub fn degree_of(&self, v: VertexId) -> (u32, u32) {
        self.store.degree_at(self.record, v)
    }

    /// Materializes the whole graph at this view as an edge list
    /// (used by reference implementations in tests).
    pub fn edges_global(&self) -> EdgeList {
        let mut edges = Vec::new();
        for pid in 0..self.num_partitions() as PartitionId {
            edges.extend(self.partition(pid).edges_global());
        }
        EdgeList::from_edges(edges, self.num_vertices())
    }

    /// Fraction of partitions this view shares (same version) with `other`
    /// — the quantity behind the paper's Fig. 1(b) and Fig. 16 analysis.
    pub fn shared_fraction(&self, other: &GraphView) -> f64 {
        let np = self.num_partitions();
        if np == 0 {
            return 1.0;
        }
        let same = (0..np as PartitionId)
            .filter(|&p| self.version_of(p) == other.version_of(p))
            .count();
        same as f64 / np as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::vertex_cut::VertexCutPartitioner;
    use crate::Partitioner;

    fn store() -> Arc<SnapshotStore> {
        let el = GraphBuilder::new(8)
            .edges([
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ])
            .build();
        Arc::new(SnapshotStore::new(
            VertexCutPartitioner::new(4).partition(&el),
        ))
    }

    fn store_mut() -> SnapshotStore {
        let el = GraphBuilder::new(8)
            .edges([
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ])
            .build();
        SnapshotStore::new(VertexCutPartitioner::new(4).partition(&el))
    }

    #[test]
    fn base_view_matches_base() {
        let s = store();
        let v = s.base_view();
        assert_eq!(v.timestamp(), 0);
        assert_eq!(v.edges_global().len(), 8);
        for p in 0..4 {
            assert_eq!(v.version_of(p), 0);
        }
    }

    #[test]
    fn addition_is_visible_only_to_later_views() {
        let mut s = store_mut();
        s.apply(10, &GraphDelta::adding([Edge::unit(0, 4)]))
            .unwrap();
        let s = Arc::new(s);
        let old = s.view_at(5);
        let new = s.view_at(10);
        assert_eq!(old.edges_global().len(), 8);
        assert_eq!(new.edges_global().len(), 9);
        assert_eq!(new.timestamp(), 10);
    }

    #[test]
    fn removal_updates_edges_and_degrees() {
        let mut s = store_mut();
        s.apply(1, &GraphDelta::removing([(1, 2)])).unwrap();
        let s = Arc::new(s);
        let v = s.latest();
        assert_eq!(v.edges_global().len(), 7);
        assert_eq!(v.degree_of(1), (0, 1));
        assert_eq!(v.degree_of(2), (1, 0));
    }

    #[test]
    fn missing_removal_is_an_error() {
        let mut s = store_mut();
        let err = s.apply(1, &GraphDelta::removing([(0, 5)])).unwrap_err();
        assert_eq!(err, StoreError::Snapshot(SnapshotError::EdgeNotFound(0, 5)));
        assert_eq!(s.num_snapshots(), 0);
    }

    #[test]
    fn out_of_range_addition_is_an_error() {
        let mut s = store_mut();
        let err = s
            .apply(1, &GraphDelta::adding([Edge::unit(0, 99)]))
            .unwrap_err();
        assert_eq!(
            err,
            StoreError::Snapshot(SnapshotError::VertexOutOfRange(99))
        );
    }

    #[test]
    fn timestamps_must_increase() {
        let mut s = store_mut();
        s.apply(5, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
        let err = s
            .apply(5, &GraphDelta::adding([Edge::unit(0, 3)]))
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::Snapshot(SnapshotError::NonMonotonicTimestamp { .. })
        ));
    }

    #[test]
    fn unchanged_partitions_keep_version_zero() {
        let mut s = store_mut();
        s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
        let s = Arc::new(s);
        let v = s.latest();
        let bumped: Vec<_> = (0..4).filter(|&p| v.version_of(p) > 0).collect();
        assert!(!bumped.is_empty());
        assert!(bumped.len() < 4, "small delta must not bump everything");
    }

    #[test]
    fn shared_fraction_decreases_with_changes() {
        let mut s = store_mut();
        s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
        let s = Arc::new(s);
        let a = s.base_view();
        let b = s.latest();
        let f = a.shared_fraction(&b);
        assert!(f < 1.0 && f > 0.0, "fraction {f}");
        assert_eq!(b.shared_fraction(&b), 1.0);
    }

    #[test]
    fn chained_snapshots_accumulate() {
        let mut s = store_mut();
        s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
        s.apply(2, &GraphDelta::adding([Edge::unit(0, 3)])).unwrap();
        s.apply(3, &GraphDelta::removing([(0, 2)])).unwrap();
        let s = Arc::new(s);
        assert_eq!(s.num_snapshots(), 3);
        let v = s.latest();
        assert_eq!(v.edges_global().len(), 9); // 8 + 2 - 1
        let mid = s.view_at(2);
        assert_eq!(mid.edges_global().len(), 10);
    }

    #[test]
    fn master_reassigned_when_replica_disappears() {
        // Remove every edge of a vertex from its master partition and the
        // master must move (or become NO_PARTITION when fully isolated).
        let mut s = store_mut();
        // Vertex 1's edges: 0->1 and 1->2. Remove both; it becomes isolated.
        s.apply(1, &GraphDelta::removing([(0, 1), (1, 2)])).unwrap();
        let s = Arc::new(s);
        let v = s.latest();
        assert_eq!(v.master_of(1), NO_PARTITION);
        assert!(v.replicas_of(1).is_empty());
        assert_eq!(v.degree_of(1), (0, 0));
    }

    /// Shard count is invisible to views: every partition, version, and
    /// edge list is identical at any placement — only the chain layout
    /// and the `shard_of` lane assignment differ.
    #[test]
    fn sharding_is_transparent_to_views() {
        let build = |shards: usize| {
            let el = GraphBuilder::new(8)
                .edges([
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 0),
                ])
                .build();
            let mut s = ShardedSnapshotStore::with_shards(
                VertexCutPartitioner::new(4).partition(&el),
                shards,
            );
            s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
            s.apply(2, &GraphDelta::adding([Edge::unit(3, 7)])).unwrap();
            s.apply(3, &GraphDelta::removing([(0, 2)])).unwrap();
            Arc::new(s)
        };
        let single = build(1);
        let sharded = build(4);
        assert_eq!(single.num_shards(), 1);
        assert_eq!(sharded.num_shards(), 4);
        for ts in [0, 1, 2, 3] {
            let a = single.view_at(ts);
            let b = sharded.view_at(ts);
            assert_eq!(a.timestamp(), b.timestamp());
            for pid in 0..4 {
                assert_eq!(a.version_of(pid), b.version_of(pid), "ts {ts} pid {pid}");
                assert_eq!(
                    a.partition(pid).edges_global(),
                    b.partition(pid).edges_global(),
                    "ts {ts} pid {pid}"
                );
            }
            for v in 0..8 {
                assert_eq!(a.master_of(v), b.master_of(v));
                assert_eq!(a.degree_of(v), b.degree_of(v));
            }
        }
    }

    /// Placement is round-robin and shard chains grow independently:
    /// a delta touching only shard `s`'s partitions leaves every other
    /// shard's chain untouched.
    #[test]
    fn shard_chains_grow_independently() {
        let el = GraphBuilder::new(8)
            .edges([
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ])
            .build();
        let mut s =
            ShardedSnapshotStore::with_shards(VertexCutPartitioner::new(4).partition(&el), 4);
        for pid in 0..4u32 {
            assert_eq!(s.shard_of(pid), pid as usize % 4);
        }
        let before: Vec<usize> = (0..4).map(|x| s.shard(x).num_records()).collect();
        assert_eq!(before, vec![0; 4]);
        s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
        let after: Vec<usize> = (0..4).map(|x| s.shard(x).num_records()).collect();
        let grown = after.iter().sum::<usize>();
        assert!(grown >= 1, "at least one shard chain must grow");
        assert!(
            after.contains(&0),
            "a one-partition delta must leave some shard untouched: {after:?}"
        );
    }

    /// Shard count clamps to the partition count so placement never
    /// leaves a shard unaddressable.
    #[test]
    fn shards_clamp_to_partitions() {
        let el = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let s = ShardedSnapshotStore::with_shards(VertexCutPartitioner::new(2).partition(&el), 64);
        assert_eq!(s.num_shards(), 2);
        let s0 = ShardedSnapshotStore::with_shards(VertexCutPartitioner::new(2).partition(&el), 0);
        assert_eq!(s0.num_shards(), 1);
    }

    /// Hash placement is as transparent as round-robin: every view
    /// resolves identically; only the lane assignment differs.
    #[test]
    fn hash_placement_is_transparent_to_views() {
        let build = |placement: ShardPlacement| {
            let el = GraphBuilder::new(8)
                .edges([
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 0),
                ])
                .build();
            let mut s = ShardedSnapshotStore::with_placement(
                VertexCutPartitioner::new(4).partition(&el),
                2,
                placement,
            );
            s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
            s.apply(2, &GraphDelta::removing([(3, 4)])).unwrap();
            Arc::new(s)
        };
        let rr = build(ShardPlacement::RoundRobin);
        let hashed = build(ShardPlacement::Hash);
        assert_eq!(*hashed.placement(), ShardPlacement::Hash);
        for ts in [0, 1, 2] {
            let a = rr.view_at(ts);
            let b = hashed.view_at(ts);
            for pid in 0..4 {
                assert_eq!(a.version_of(pid), b.version_of(pid), "ts {ts} pid {pid}");
                assert_eq!(
                    a.partition(pid).edges_global(),
                    b.partition(pid).edges_global(),
                    "ts {ts} pid {pid}"
                );
            }
        }
        // The store's lane assignment follows the placement function.
        for pid in 0..4u32 {
            assert_eq!(hashed.shard_of(pid), ShardPlacement::Hash.shard_of(pid, 2));
        }
    }

    #[test]
    fn hash_placement_spreads_and_stays_in_range() {
        for shards in [1usize, 2, 3, 8] {
            let lanes: Vec<usize> = (0..64u32)
                .map(|pid| ShardPlacement::Hash.shard_of(pid, shards))
                .collect();
            assert!(lanes.iter().all(|&l| l < shards));
            for lane in 0..shards {
                assert!(
                    lanes.contains(&lane),
                    "lane {lane} unused at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn snapshot_at_returns_bind_timestamp() {
        let mut s = store_mut();
        assert_eq!(s.snapshot_at(0), 0);
        assert_eq!(s.snapshot_at(99), 0);
        s.apply(10, &GraphDelta::adding([Edge::unit(0, 2)]))
            .unwrap();
        s.apply(20, &GraphDelta::adding([Edge::unit(0, 3)]))
            .unwrap();
        assert_eq!(s.snapshot_at(9), 0);
        assert_eq!(s.snapshot_at(10), 10);
        assert_eq!(s.snapshot_at(19), 10);
        assert_eq!(s.snapshot_at(25), 20);
        // snapshot_at agrees with the view a job would actually bind.
        let s = Arc::new(s);
        for ts in [0, 9, 10, 15, 20, 99] {
            assert_eq!(s.snapshot_at(ts), s.view_at(ts).timestamp());
        }
    }

    #[test]
    fn replica_lists_stay_sorted_and_consistent() {
        let mut s = store_mut();
        s.apply(1, &GraphDelta::adding([Edge::unit(2, 6), Edge::unit(6, 2)]))
            .unwrap();
        let s = Arc::new(s);
        let v = s.latest();
        for vid in 0..8 {
            let reps = v.replicas_of(vid);
            let mut sorted = reps.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(reps, sorted.as_slice(), "vertex {vid}");
            for &pid in reps {
                assert!(v.partition(pid).local_of(vid).is_some(), "v{vid} p{pid}");
            }
            if !reps.is_empty() {
                assert!(reps.contains(&v.master_of(vid)));
            }
        }
    }

    // ---- layered chain + checkpoint compaction ----

    /// One delta stream, observed through every compaction regime, must
    /// be indistinguishable view by view: compaction is representation,
    /// never semantics.
    #[test]
    fn compaction_is_transparent_to_views() {
        let build = |policy: CompactionPolicy, post_hoc: bool| {
            let el = GraphBuilder::new(8)
                .edges([
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 0),
                ])
                .build();
            let mut s =
                ShardedSnapshotStore::with_shards(VertexCutPartitioner::new(4).partition(&el), 2)
                    .with_compaction(policy);
            for (i, d) in [
                GraphDelta::adding([Edge::unit(0, 2)]),
                GraphDelta::adding([Edge::unit(3, 7), Edge::unit(1, 5)]),
                GraphDelta::removing([(0, 2)]),
                GraphDelta::adding([Edge::unit(6, 1)]),
                GraphDelta::removing([(3, 7)]),
            ]
            .iter()
            .enumerate()
            {
                s.apply((i as u64 + 1) * 10, d).unwrap();
            }
            if post_hoc {
                s.compact().unwrap();
            }
            Arc::new(s)
        };
        let reference = build(CompactionPolicy::Off, false);
        for (policy, post_hoc) in [
            (CompactionPolicy::EveryK(1), false),
            (CompactionPolicy::EveryK(2), false),
            (CompactionPolicy::EveryK(4), false),
            (CompactionPolicy::Off, true),
        ] {
            let other = build(policy, post_hoc);
            for ts in [0, 10, 20, 30, 40, 50, 99] {
                let a = reference.view_at(ts);
                let b = other.view_at(ts);
                assert_eq!(a.timestamp(), b.timestamp());
                for pid in 0..4 {
                    assert_eq!(
                        a.version_of(pid),
                        b.version_of(pid),
                        "{policy:?} ts {ts} pid {pid}"
                    );
                    assert_eq!(
                        a.partition(pid).edges_global(),
                        b.partition(pid).edges_global(),
                        "{policy:?} ts {ts} pid {pid}"
                    );
                }
                for v in 0..8 {
                    assert_eq!(a.master_of(v), b.master_of(v), "{policy:?} ts {ts} v {v}");
                    assert_eq!(
                        a.replicas_of(v),
                        b.replicas_of(v),
                        "{policy:?} ts {ts} v {v}"
                    );
                    assert_eq!(a.degree_of(v), b.degree_of(v), "{policy:?} ts {ts} v {v}");
                }
            }
        }
    }

    /// EveryK materializes checkpoints on schedule; Off never does; a
    /// manual compact() stamps exactly one at the head and is idempotent.
    #[test]
    fn checkpoint_cadence_follows_policy() {
        let run = |policy: CompactionPolicy| {
            let mut s = store_mut().with_compaction(policy);
            for i in 1..=6u64 {
                s.apply(
                    i,
                    &GraphDelta::adding([Edge::unit((i % 8) as u32, ((i + 2) % 8) as u32)]),
                )
                .unwrap();
            }
            s
        };
        assert_eq!(run(CompactionPolicy::Off).num_checkpoints(), 0);
        assert_eq!(run(CompactionPolicy::EveryK(2)).num_checkpoints(), 3);
        assert_eq!(run(CompactionPolicy::EveryK(1)).num_checkpoints(), 6);

        let mut s = run(CompactionPolicy::Off);
        s.compact().unwrap();
        assert_eq!(s.num_checkpoints(), 1);
        s.compact().unwrap();
        assert_eq!(s.num_checkpoints(), 1, "compact() is idempotent");
        assert!(s.shard(0).num_checkpoints() >= 1);
    }

    /// Layered records hold only what their delta touched: applying a
    /// constant-size delta appends constant-size records no matter how
    /// long the chain already is (the O(Δ) ingest property, structurally).
    #[test]
    fn records_stay_delta_sized_without_compaction() {
        let mut s = store_mut().with_compaction(CompactionPolicy::Off);
        for i in 1..=20u64 {
            let v = (i % 7) as u32;
            s.apply(i, &GraphDelta::adding([Edge::unit(v, (v + 3) % 8)]))
                .unwrap();
        }
        // A one-edge delta touches two vertices: every record's delta
        // maps stay that small, they never re-accumulate the chain.
        for rec in &s.records {
            assert!(rec.master_delta.len() <= 2, "{}", rec.master_delta.len());
            assert!(rec.replica_delta.len() <= 2);
            assert!(rec.degree_delta.len() <= 2);
            assert!(rec.checkpoint.is_none());
        }
        for shard in &s.shards {
            for rec in &shard.records {
                assert!(rec.overrides.len() <= 2, "one-edge delta, tiny override");
            }
        }
    }

    // ---- bind-point boundaries and delta summaries ----

    /// The `view_at` / `snapshot_at` boundary is *inclusive*: an arrival
    /// timestamp exactly equal to a snapshot's timestamp binds that
    /// snapshot, one tick earlier binds the previous one.  (PR 4 swapped
    /// an `rposition` for a `partition_point`; this pins the semantics
    /// incremental resume relies on to bind the same version as a
    /// from-scratch submission.)
    #[test]
    fn view_at_timestamp_boundary_is_inclusive() {
        let mut s = store_mut();
        s.apply(5, &GraphDelta::adding([Edge::unit(0, 3)])).unwrap();
        s.apply(10, &GraphDelta::adding([Edge::unit(1, 4)]))
            .unwrap();
        let s = Arc::new(s);
        for (ts, bound) in [(0, 0), (4, 0), (5, 5), (9, 5), (10, 10), (u64::MAX, 10)] {
            assert_eq!(s.snapshot_at(ts), bound, "snapshot_at({ts})");
            assert_eq!(s.view_at(ts).timestamp(), bound, "view_at({ts})");
        }
        // The bind is observable, not just a label: an arrival exactly
        // at ts 5 sees the 0→3 edge (out-degree of 0 grew), at 4 not.
        assert_eq!(s.view_at(4).degree_of(0), s.base_view().degree_of(0));
        assert_eq!(
            s.view_at(5).degree_of(0).0,
            s.base_view().degree_of(0).0 + 1
        );
        // And equal-bind arrivals share every partition version.
        let (a, b) = (s.view_at(5), s.view_at(9));
        assert_eq!(a.shared_fraction(&b), 1.0);
    }

    /// `delta_summary` resolves its endpoints with the same inclusive
    /// bind as `view_at`, lists exactly the incident vertices, counts
    /// removals, and refuses backwards ranges.
    #[test]
    fn delta_summary_spans_exactly_the_bound_range() {
        let mut s = store_mut();
        s.apply(5, &GraphDelta::adding([Edge::unit(0, 3)])).unwrap();
        s.apply(10, &GraphDelta::adding([Edge::unit(1, 4)]))
            .unwrap();
        s.apply(15, &GraphDelta::removing([(0, 3)])).unwrap();

        // Equal binds (including mid-gap timestamps binding the same
        // record) are an empty, monotone-safe summary.
        for (a, b) in [(0, 4), (5, 9), (5, 5), (10, 14), (17, 99)] {
            let d = s.delta_summary(a, b).expect("forward range");
            assert!(d.is_empty() && d.monotone_safe(), "({a},{b}): {d:?}");
        }
        // A range crossing one addition lists both endpoints only.
        let d = s.delta_summary(4, 5).unwrap();
        assert_eq!(d.touched, vec![0, 3]);
        assert_eq!((d.removals, d.deltas), (0, 1));
        assert!(d.monotone_safe());
        // Crossing both additions: union of endpoints, sorted, deduped.
        let d = s.delta_summary(0, 12).unwrap();
        assert_eq!(d.touched, vec![0, 1, 3, 4]);
        assert_eq!((d.removals, d.deltas), (0, 2));
        // Removal endpoints are frontier vertices too, and the removal
        // count flags the monotone fallback.
        let d = s.delta_summary(10, 15).unwrap();
        assert_eq!(d.touched, vec![0, 3]);
        assert_eq!(d.removals, 1);
        assert!(!d.monotone_safe() && !d.is_empty());
        // Backwards ranges (prior newer than target) are refused.
        assert_eq!(s.delta_summary(10, 9), None);
        assert_eq!(s.delta_summary(15, 0), None);
        // The implicit base at 0 and the timestamp list line up.
        assert_eq!(s.snapshot_timestamps(), vec![5, 10, 15]);
    }

    /// Removal counts survive the WAL: a recovered store answers
    /// `delta_summary` identically to the survivor, so a resumed
    /// standing job makes the same seed-vs-fallback decision after a
    /// crash as before it.
    #[test]
    fn delta_summary_survives_recovery() {
        let dir =
            std::env::temp_dir().join(format!("cgraph-snapshot-removals-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = store_mut().persist_to(&dir).unwrap();
        s.apply(5, &GraphDelta::adding([Edge::unit(0, 3)])).unwrap();
        s.apply(10, &GraphDelta::removing([(0, 3)])).unwrap();
        let survivor: Vec<_> = [(0, 5), (0, 10), (5, 10)]
            .iter()
            .map(|&(a, b)| s.delta_summary(a, b).unwrap())
            .collect();
        drop(s);
        let r = SnapshotStore::open(&dir).unwrap();
        for (i, &(a, b)) in [(0, 5), (0, 10), (5, 10)].iter().enumerate() {
            assert_eq!(
                r.delta_summary(a, b).unwrap(),
                survivor[i],
                "recovered delta_summary({a},{b})"
            );
        }
        assert_eq!(r.delta_summary(5, 10).unwrap().removals, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- placement, capacity, and concurrent apply ----

    /// The greedy co-access placer groups partitions the same jobs
    /// touch, stays balanced, and is deterministic.
    #[test]
    fn locality_placer_groups_co_accessed_partitions() {
        let mut profile = FootprintProfile::new();
        // Two disjoint communities, each seen by two jobs.
        for _ in 0..2 {
            profile.record([0u32, 2, 5]);
            profile.record([1u32, 3, 4]);
        }
        let placement = ShardPlacement::locality(&profile, 6, 2);
        let lane = |pid: u32| placement.shard_of(pid, 2);
        assert_eq!(lane(0), lane(2), "community A shares a shard");
        assert_eq!(lane(0), lane(5));
        assert_eq!(lane(1), lane(3), "community B shares a shard");
        assert_eq!(lane(1), lane(4));
        assert_ne!(lane(0), lane(1), "balance splits the communities");
        // Determinism: same stats, same table.
        assert_eq!(placement, ShardPlacement::locality(&profile, 6, 2));
        // Balance cap: no shard exceeds ceil(np / shards).
        for shards in [2usize, 3, 4] {
            let p = ShardPlacement::locality(&profile, 6, shards);
            let mut load = vec![0usize; shards];
            for pid in 0..6u32 {
                load[p.shard_of(pid, shards)] += 1;
            }
            assert!(
                load.iter().all(|&l| l <= 6usize.div_ceil(shards)),
                "{load:?}"
            );
        }
        // Empty stats still place every partition in range, balanced.
        let empty = ShardPlacement::locality(&FootprintProfile::new(), 5, 2);
        let mut load = [0usize; 2];
        for pid in 0..5u32 {
            load[empty.shard_of(pid, 2)] += 1;
        }
        assert_eq!(load.iter().sum::<usize>(), 5);
        assert!(load.iter().all(|&l| l <= 3));
    }

    /// Locality placement is as transparent as the others: views are
    /// bit-identical; only the lane assignment differs.
    #[test]
    fn locality_placement_is_transparent_to_views() {
        let mut profile = FootprintProfile::new();
        profile.record([0u32, 3]);
        profile.record([1u32, 2]);
        let build = |placement: ShardPlacement| {
            let el = GraphBuilder::new(8)
                .edges([
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 0),
                ])
                .build();
            let mut s = ShardedSnapshotStore::with_placement(
                VertexCutPartitioner::new(4).partition(&el),
                2,
                placement,
            );
            s.apply(1, &GraphDelta::adding([Edge::unit(0, 2)])).unwrap();
            s.apply(2, &GraphDelta::removing([(3, 4)])).unwrap();
            Arc::new(s)
        };
        let rr = build(ShardPlacement::RoundRobin);
        let local = build(ShardPlacement::locality(&profile, 4, 2));
        for ts in [0, 1, 2] {
            let a = rr.view_at(ts);
            let b = local.view_at(ts);
            for pid in 0..4 {
                assert_eq!(a.version_of(pid), b.version_of(pid), "ts {ts} pid {pid}");
                assert_eq!(
                    a.partition(pid).edges_global(),
                    b.partition(pid).edges_global(),
                    "ts {ts} pid {pid}"
                );
            }
        }
        // The store's lane assignment follows the computed table.
        assert_eq!(local.shard_of(0), local.shard_of(3));
        assert_eq!(local.shard_of(1), local.shard_of(2));
        assert_ne!(local.shard_of(0), local.shard_of(1));
    }

    /// Capacity enforcement spills only checkpoint-covered records,
    /// brings the shard back under budget, stays transparent to every
    /// view, and reports spilled resolutions through the views.
    #[test]
    fn capacity_spills_are_checkpoint_covered_and_transparent() {
        let stream = |s: &mut ShardedSnapshotStore| {
            for i in 1..=24u64 {
                let v = (i % 7) as u32;
                s.apply(i, &GraphDelta::adding([Edge::unit(v, (v + 3) % 8)]))
                    .unwrap();
            }
        };
        let mut plain = store_mut().with_compaction(CompactionPolicy::EveryK(4));
        stream(&mut plain);
        let resident = plain.shard_resident_bytes(0);
        assert!(!plain.has_spills());

        let cap = resident * 6 / 10;
        let mut capped = store_mut()
            .with_compaction(CompactionPolicy::EveryK(4))
            .with_capacity(ShardCapacity::bytes(cap));
        stream(&mut capped);
        assert_eq!(capped.capacity(), ShardCapacity::bytes(cap));
        assert!(capped.has_spills(), "tight cap must spill");
        let shard = capped.shard(0);
        let horizon = shard
            .newest_checkpoint()
            .expect("EveryK stamps checkpoints");
        assert!(shard.num_spilled() > 0);
        for i in shard.spilled_indices() {
            assert!(i < horizon, "spilled record {i} above checkpoint {horizon}");
        }
        // Post-install budget: under cap, or everything evictable spilled.
        let resident_now = capped.shard_resident_bytes(0);
        assert!(
            resident_now <= cap || !capped.shard_has_evictable(0),
            "resident {resident_now} over cap {cap} with evictable records left"
        );
        assert!(resident_now < resident, "spilling must shrink residency");
        assert!(capped.override_bytes() < plain.override_bytes());

        // Transparency + the spill signal: every view resolves
        // identically, and at least one historical view reads through a
        // spilled record (the latest never does).
        let plain = Arc::new(plain);
        let capped = Arc::new(capped);
        let mut saw_spill = false;
        for ts in 0..=24u64 {
            let a = plain.view_at(ts);
            let b = capped.view_at(ts);
            for pid in 0..4 {
                assert_eq!(a.version_of(pid), b.version_of(pid), "ts {ts} pid {pid}");
                assert_eq!(
                    a.partition(pid).edges_global(),
                    b.partition(pid).edges_global(),
                    "ts {ts} pid {pid}"
                );
                assert!(!a.partition_spilled(pid), "uncapped store never spills");
                saw_spill |= b.partition_spilled(pid);
            }
        }
        assert!(saw_spill, "some historical view must read spilled state");
        let latest = capped.latest();
        for pid in 0..4 {
            assert!(
                !latest.partition_spilled(pid),
                "the latest view answers from the resident current index"
            );
        }
    }

    /// Unlimited capacity (the default) never spills.
    #[test]
    fn default_capacity_never_spills() {
        let mut s = store_mut();
        for i in 1..=20u64 {
            let v = (i % 7) as u32;
            s.apply(i, &GraphDelta::adding([Edge::unit(v, (v + 3) % 8)]))
                .unwrap();
        }
        assert!(!s.has_spills());
        assert!(!ShardCapacity::default().is_limited());
        for sh in 0..s.num_shards() {
            assert_eq!(s.shard(sh).num_spilled(), 0);
        }
    }

    /// Concurrent apply is bit-identical to serial apply: same records,
    /// versions, views, and resident accounting at any worker count.
    #[test]
    fn concurrent_apply_matches_serial_bit_for_bit() {
        let build = |workers: usize, shards: usize| {
            let el = GraphBuilder::new(16)
                .edges((0..16u32).map(|v| (v, (v + 1) % 16)))
                .build();
            let mut s = ShardedSnapshotStore::with_shards(
                VertexCutPartitioner::new(8).partition(&el),
                shards,
            )
            .with_apply_workers(workers)
            // The fixture is tiny; disable the work-size clamp so the
            // concurrent rebuild path actually runs.
            .with_apply_threshold(0);
            assert_eq!(s.apply_workers(), workers.max(1));
            for i in 1..=12u64 {
                // Each delta spans several partitions so the fan-out is real.
                let d = GraphDelta::adding([
                    Edge::unit((i % 16) as u32, ((i + 5) % 16) as u32),
                    Edge::unit(((i + 8) % 16) as u32, ((i + 2) % 16) as u32),
                    Edge::unit(((i + 4) % 16) as u32, ((i + 11) % 16) as u32),
                ]);
                s.apply(i, &d).unwrap();
            }
            Arc::new(s)
        };
        let serial = build(1, 4);
        for (workers, shards) in [(2, 4), (4, 4), (8, 4), (4, 1)] {
            let par = build(workers, shards);
            assert_eq!(par.override_bytes(), build(1, shards).override_bytes());
            for ts in 0..=12u64 {
                let a = serial.view_at(ts);
                let b = par.view_at(ts);
                for pid in 0..8 {
                    assert_eq!(a.version_of(pid), b.version_of(pid), "ts {ts} pid {pid}");
                    assert_eq!(
                        a.partition(pid).edges_global(),
                        b.partition(pid).edges_global(),
                        "w {workers} ts {ts} pid {pid}"
                    );
                }
                for v in 0..16 {
                    assert_eq!(a.master_of(v), b.master_of(v));
                    assert_eq!(a.replicas_of(v), b.replicas_of(v));
                    assert_eq!(a.degree_of(v), b.degree_of(v));
                }
            }
        }
        // Errors surface identically: the serial loop's first (smallest
        // affected pid) edge-not-found wins in both modes.
        let mut a = store_mut().with_apply_workers(4).with_apply_threshold(0);
        let mut b = store_mut();
        let bad = GraphDelta {
            additions: vec![Edge::unit(0, 2), Edge::unit(4, 6)],
            removals: vec![(0, 1), (0, 1)],
        };
        assert_eq!(a.apply(1, &bad).unwrap_err(), b.apply(1, &bad).unwrap_err());
    }

    /// The work-size threshold keeps small applies serial even with a
    /// large worker budget, and `0` removes the clamp — observable only
    /// through the builder/accessor and bit-identical results, since
    /// thread count never changes what any view sees.
    #[test]
    fn apply_threshold_defaults_and_override() {
        let s = store_mut();
        assert_eq!(s.apply_threshold(), DEFAULT_APPLY_EDGES_PER_WORKER);
        let s = s.with_apply_threshold(0);
        assert_eq!(s.apply_threshold(), 0);
        let s = s.with_apply_threshold(1024);
        assert_eq!(s.apply_threshold(), 1024);

        // A small delta applied under a huge worker budget with the
        // default threshold (clamped serial) must match the unclamped
        // concurrent apply and the plain serial apply bit-for-bit.
        let run = |workers: usize, threshold: usize| {
            let mut s = store_mut()
                .with_apply_workers(workers)
                .with_apply_threshold(threshold);
            for i in 1..=6u64 {
                let v = (i % 8) as u32;
                s.apply(i, &GraphDelta::adding([Edge::unit(v, (v + 2) % 8)]))
                    .unwrap();
            }
            let s = Arc::new(s);
            let view = s.view_at(6);
            (0..view.num_partitions() as u32)
                .map(|pid| (view.version_of(pid), view.partition(pid).edges_global()))
                .collect::<Vec<_>>()
        };
        let serial = run(1, DEFAULT_APPLY_EDGES_PER_WORKER);
        assert_eq!(run(8, DEFAULT_APPLY_EDGES_PER_WORKER), serial);
        assert_eq!(run(8, 0), serial);
    }

    /// The default policy keeps resident bytes far below the EveryK(1)
    /// cumulative layout on a long chain.
    #[test]
    fn layered_chain_is_smaller_than_cumulative() {
        let run = |policy: CompactionPolicy| {
            let mut s = store_mut().with_compaction(policy);
            for i in 1..=40u64 {
                let v = (i % 7) as u32;
                s.apply(i, &GraphDelta::adding([Edge::unit(v, (v + 3) % 8)]))
                    .unwrap();
            }
            s.override_bytes()
        };
        let layered = run(CompactionPolicy::default());
        let cumulative = run(CompactionPolicy::EveryK(1));
        assert!(
            layered * 2 <= cumulative,
            "layered {layered} vs cumulative {cumulative}"
        );
    }
}
