//! Equal-edge vertex-cut partitioning (paper §3.2.1).
//!
//! The paper balances load by "evenly divid\[ing\] the edges of the graph
//! into same-sized partitions in terms of the number of edges", accepting
//! vertex replication (master/mirror) instead of edge-cut communication.

use crate::edge::{Edge, EdgeList};
use crate::partition::PartitionSet;
use crate::Partitioner;

/// Splits an edge list into `num_partitions` chunks of (near-)equal edge
/// count, after sorting by `(src, dst)` so each chunk covers a contiguous
/// source range and replicas stay few.
#[derive(Clone, Copy, Debug)]
pub struct VertexCutPartitioner {
    num_partitions: usize,
}

impl VertexCutPartitioner {
    /// Creates a partitioner producing `num_partitions` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions == 0`.
    pub fn new(num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        VertexCutPartitioner { num_partitions }
    }

    /// Picks a partition count so each partition's structure data fits the
    /// paper's sizing rule `Pg + (Pg/sg)·sp·N + b ≤ C` (§3.2.1): `cache`
    /// bytes of simulated LLC, `jobs` concurrent private tables of
    /// `state_bytes` per vertex, and a `reserve` buffer.
    pub fn for_cache(
        edges: &EdgeList,
        cache_bytes: u64,
        jobs: usize,
        state_bytes: u64,
        reserve: u64,
    ) -> Self {
        // Approximate per-edge structure cost (two local-id + weight entries)
        // and per-vertex overhead; see `Partition::structure_bytes`.
        let per_edge = 16u64;
        let per_vertex_states = state_bytes * jobs as u64;
        // Vertices per partition track edges; assume avg degree >= 1 so the
        // private-table term is bounded by edges * state cost.
        let budget = cache_bytes.saturating_sub(reserve).max(1);
        let bytes_per_edge = per_edge + per_vertex_states;
        let edges_per_partition = (budget / bytes_per_edge).max(1);
        let parts = (edges.len() as u64).div_ceil(edges_per_partition).max(1);
        VertexCutPartitioner::new(parts as usize)
    }

    /// The configured partition count.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }
}

impl Partitioner for VertexCutPartitioner {
    fn partition(&self, edges: &EdgeList) -> PartitionSet {
        let mut sorted: Vec<Edge> = edges.edges().to_vec();
        sorted.sort_by_key(|e| (e.src, e.dst));
        let chunks = chunk_evenly(&sorted, self.num_partitions);
        PartitionSet::assemble(chunks, edges.num_vertices())
    }

    fn name(&self) -> &'static str {
        "equal-edge vertex cut"
    }
}

/// Splits `edges` into exactly `k` chunks whose sizes differ by at most one.
pub(crate) fn chunk_evenly(edges: &[Edge], k: usize) -> Vec<Vec<Edge>> {
    let m = edges.len();
    let base = m / k;
    let extra = m % k;
    let mut chunks = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        chunks.push(edges[start..start + len].to_vec());
        start += len;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn ring(n: u32) -> EdgeList {
        GraphBuilder::new(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .build()
    }

    #[test]
    fn partition_sizes_balanced() {
        let ps = VertexCutPartitioner::new(4).partition(&ring(10));
        let sizes: Vec<usize> = ps.partitions().iter().map(|p| p.num_edges()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn all_edges_preserved() {
        let el = ring(23);
        let ps = VertexCutPartitioner::new(5).partition(&el);
        assert_eq!(ps.num_edges(), 23);
        assert_eq!(ps.num_vertices(), 23);
    }

    #[test]
    fn single_partition_works() {
        let ps = VertexCutPartitioner::new(1).partition(&ring(6));
        assert_eq!(ps.num_partitions(), 1);
        assert!((ps.replication_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_partitions_than_edges() {
        let ps = VertexCutPartitioner::new(8).partition(&ring(3));
        assert_eq!(ps.num_partitions(), 8);
        assert_eq!(ps.num_edges(), 3);
        // Empty partitions are legal and simply hold no replicas.
        assert!(ps.partitions().iter().any(|p| p.num_edges() == 0));
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        VertexCutPartitioner::new(0);
    }

    #[test]
    fn for_cache_scales_with_cache_size() {
        let el = ring(1000);
        let small = VertexCutPartitioner::for_cache(&el, 4 << 10, 4, 8, 256);
        let large = VertexCutPartitioner::for_cache(&el, 1 << 20, 4, 8, 256);
        assert!(small.num_partitions() > large.num_partitions());
    }
}
