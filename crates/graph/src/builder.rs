//! Incremental construction of edge lists with validation.

use crate::edge::{Edge, EdgeList};
use crate::types::{VertexId, Weight};

/// A convenience builder that validates and normalizes edges before they
/// reach a partitioner.
///
/// # Examples
///
/// ```
/// use cgraph_graph::GraphBuilder;
///
/// let edges = GraphBuilder::new(4)
///     .edge(0, 1)
///     .edge(1, 2)
///     .weighted_edge(2, 3, 4.5)
///     .build();
/// assert_eq!(edges.len(), 3);
/// assert_eq!(edges.num_vertices(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    edges: EdgeList,
    allow_self_loops: bool,
    dedup: bool,
}

impl GraphBuilder {
    /// Starts building a graph over `num_vertices` vertices.
    pub fn new(num_vertices: VertexId) -> Self {
        GraphBuilder { edges: EdgeList::new(num_vertices), allow_self_loops: false, dedup: true }
    }

    /// Permits self loops (dropped by default, as in the paper's
    /// preprocessing of the web/social graphs).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Controls whether duplicate `(src, dst)` pairs are collapsed at
    /// [`build`](Self::build) time (default `true`).
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Adds an unweighted (weight `1.0`) edge.
    pub fn edge(self, src: VertexId, dst: VertexId) -> Self {
        self.weighted_edge(src, dst, 1.0)
    }

    /// Adds a weighted edge; silently drops disallowed self loops.
    pub fn weighted_edge(mut self, src: VertexId, dst: VertexId, weight: Weight) -> Self {
        if src == dst && !self.allow_self_loops {
            return self;
        }
        self.edges.push(Edge::weighted(src, dst, weight));
        self
    }

    /// Adds every edge from an iterator of `(src, dst)` pairs.
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, iter: I) -> Self {
        for (s, d) in iter {
            self = self.edge(s, d);
        }
        self
    }

    /// Finalizes the edge list (sorted, optionally deduplicated).
    pub fn build(mut self) -> EdgeList {
        if self.dedup {
            self.edges.sort_and_dedup();
        }
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_dropped_by_default() {
        let el = GraphBuilder::new(3).edge(1, 1).edge(0, 1).build();
        assert_eq!(el.len(), 1);
    }

    #[test]
    fn self_loops_kept_when_allowed() {
        let el = GraphBuilder::new(3)
            .allow_self_loops(true)
            .edge(1, 1)
            .build();
        assert_eq!(el.len(), 1);
    }

    #[test]
    fn duplicates_collapsed() {
        let el = GraphBuilder::new(3).edge(0, 1).edge(0, 1).build();
        assert_eq!(el.len(), 1);
    }

    #[test]
    fn duplicates_kept_when_dedup_disabled() {
        let el = GraphBuilder::new(3)
            .dedup(false)
            .edge(0, 1)
            .edge(0, 1)
            .build();
        assert_eq!(el.len(), 2);
    }

    #[test]
    fn edges_iterator_form() {
        let el = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        assert_eq!(el.len(), 3);
    }
}
