//! Core-subgraph partitioning (paper §3.3).
//!
//! High-degree "core" vertices converge slowly and keep their partitions hot
//! in the cache.  Packing the core subgraph — the core vertices and the
//! edges on paths between them — into dedicated partitions means reloading
//! those hot partitions no longer drags along cold, early-convergent
//! vertices, sparing bandwidth and cache space.

use crate::edge::{Edge, EdgeList};
use crate::partition::PartitionSet;
use crate::vertex_cut::chunk_evenly;
use crate::Partitioner;

/// How the core-vertex degree threshold is chosen.
#[derive(Clone, Copy, Debug)]
pub enum CoreThreshold {
    /// Vertices with total degree (in + out) at or above this value are core.
    Absolute(u32),
    /// The top `fraction` of vertices by degree are core
    /// (e.g. `0.05` marks the hottest 5 %).
    TopFraction(f64),
}

/// Partitioner that packs the core subgraph into dedicated equal-sized
/// partitions and the remaining edges into the rest.
#[derive(Clone, Copy, Debug)]
pub struct CoreSubgraphPartitioner {
    num_partitions: usize,
    threshold: CoreThreshold,
}

impl CoreSubgraphPartitioner {
    /// Creates a partitioner with `num_partitions` total partitions and the
    /// given core-vertex threshold.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions == 0` or a `TopFraction` is outside
    /// `(0, 1]`.
    pub fn new(num_partitions: usize, threshold: CoreThreshold) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        if let CoreThreshold::TopFraction(f) = threshold {
            assert!(f > 0.0 && f <= 1.0, "fraction must be in (0, 1]");
        }
        CoreSubgraphPartitioner { num_partitions, threshold }
    }

    /// The configured partition count.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Resolves the threshold to an absolute degree for `edges`.
    pub fn resolve_threshold(&self, edges: &EdgeList) -> u32 {
        match self.threshold {
            CoreThreshold::Absolute(d) => d,
            CoreThreshold::TopFraction(f) => {
                let out = edges.out_degrees();
                let inn = edges.in_degrees();
                let mut total: Vec<u32> = out.iter().zip(&inn).map(|(a, b)| a + b).collect();
                if total.is_empty() {
                    return u32::MAX;
                }
                total.sort_unstable_by(|a, b| b.cmp(a));
                let k = ((total.len() as f64 * f).ceil() as usize).clamp(1, total.len());
                total[k - 1].max(1)
            }
        }
    }

    /// Classifies each vertex as core (`true`) or periphery.
    pub fn core_mask(&self, edges: &EdgeList) -> Vec<bool> {
        let t = self.resolve_threshold(edges);
        let out = edges.out_degrees();
        let inn = edges.in_degrees();
        out.iter().zip(&inn).map(|(a, b)| a + b >= t).collect()
    }
}

impl Partitioner for CoreSubgraphPartitioner {
    fn partition(&self, edges: &EdgeList) -> PartitionSet {
        let mask = self.core_mask(edges);
        // Core subgraph = edges whose both endpoints are core ("the core
        // vertices and the edges on the paths between them").
        let mut core: Vec<Edge> = Vec::new();
        let mut rest: Vec<Edge> = Vec::new();
        for &e in edges.edges() {
            if mask[e.src as usize] && mask[e.dst as usize] {
                core.push(e);
            } else {
                rest.push(e);
            }
        }
        core.sort_by_key(|e| (e.src, e.dst));
        rest.sort_by_key(|e| (e.src, e.dst));

        // Same-sized partitions across both classes: the global target size
        // is |E| / num_partitions; each class gets a proportional share of
        // the partitions (at least one if non-empty).
        let m = edges.len().max(1);
        let target = m.div_ceil(self.num_partitions);
        let mut core_parts = core.len().div_ceil(target.max(1));
        let mut rest_parts = rest.len().div_ceil(target.max(1));
        if core.is_empty() {
            core_parts = 0;
        }
        if rest.is_empty() {
            rest_parts = 0;
        }
        // Distribute any remaining partition budget to the larger class so
        // the final count matches the request when possible.
        while core_parts + rest_parts < self.num_partitions {
            if core.len() / (core_parts.max(1)) >= rest.len() / (rest_parts.max(1))
                && !core.is_empty()
            {
                core_parts += 1;
            } else if !rest.is_empty() {
                rest_parts += 1;
            } else {
                core_parts += 1;
            }
        }

        let mut chunks = Vec::with_capacity(core_parts + rest_parts);
        if core_parts > 0 {
            chunks.extend(chunk_evenly(&core, core_parts));
        }
        if rest_parts > 0 {
            chunks.extend(chunk_evenly(&rest, rest_parts));
        }
        if chunks.is_empty() {
            chunks.push(Vec::new());
        }
        PartitionSet::assemble(chunks, edges.num_vertices())
    }

    fn name(&self) -> &'static str {
        "core-subgraph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// A star (hub 0) plus a chain of cold vertices.
    fn star_plus_chain() -> EdgeList {
        let mut b = GraphBuilder::new(20);
        for i in 1..10 {
            b = b.edge(0, i).edge(i, 0);
        }
        for i in 10..19 {
            b = b.edge(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn hub_is_core() {
        let p = CoreSubgraphPartitioner::new(4, CoreThreshold::TopFraction(0.05));
        let mask = p.core_mask(&star_plus_chain());
        assert!(mask[0]);
        assert!(!mask[15]);
    }

    #[test]
    fn absolute_threshold_selects_by_degree() {
        let p = CoreSubgraphPartitioner::new(4, CoreThreshold::Absolute(5));
        let mask = p.core_mask(&star_plus_chain());
        assert!(mask[0]); // degree 18
        assert!(!mask[1]); // degree 2
    }

    #[test]
    fn all_edges_preserved() {
        let el = star_plus_chain();
        let ps = CoreSubgraphPartitioner::new(4, CoreThreshold::TopFraction(0.1)).partition(&el);
        assert_eq!(ps.num_edges(), el.len() as u64);
    }

    #[test]
    fn core_edges_grouped_in_leading_partitions() {
        // With threshold selecting hubs 0 and 1 (mutually linked heavily),
        // the core partition should contain only core-core edges.
        let mut b = GraphBuilder::new(30).dedup(false);
        for _ in 0..1 {
            b = b.edge(0, 1).edge(1, 0);
        }
        for i in 2..20 {
            b = b.edge(0, i).edge(1, i);
        }
        for i in 20..29 {
            b = b.edge(i, i + 1);
        }
        let el = b.build();
        let p = CoreSubgraphPartitioner::new(4, CoreThreshold::Absolute(10));
        let mask = p.core_mask(&el);
        let ps = p.partition(&el);
        // Partition 0 holds the core subgraph: every edge endpoint pair core.
        let p0 = ps.partition(0);
        for li in 0..p0.num_local_vertices() as u32 {
            for (t, _) in p0.out_edges(li) {
                let s = p0.global_of(li) as usize;
                let d = p0.global_of(t) as usize;
                assert!(
                    mask[s] && mask[d],
                    "non-core edge {s}->{d} in core partition"
                );
            }
        }
    }

    #[test]
    fn empty_graph_yields_one_empty_partition() {
        let el = EdgeList::new(5);
        let ps = CoreSubgraphPartitioner::new(3, CoreThreshold::Absolute(1)).partition(&el);
        assert!(ps.num_partitions() >= 1);
        assert_eq!(ps.num_edges(), 0);
    }

    #[test]
    fn partition_count_close_to_requested() {
        let el = star_plus_chain();
        let ps = CoreSubgraphPartitioner::new(6, CoreThreshold::TopFraction(0.1)).partition(&el);
        assert!(ps.num_partitions() >= 6);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_rejected() {
        CoreSubgraphPartitioner::new(4, CoreThreshold::TopFraction(0.0));
    }
}
