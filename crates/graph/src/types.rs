//! Fundamental identifier and scalar types shared across the workspace.

/// A global vertex identifier.
///
/// The substrate supports up to `u32::MAX` vertices, matching the scale of
/// the paper's largest scaled-down dataset while keeping the partitioned
/// tables compact.
pub type VertexId = u32;

/// An index into a partition's local vertex table.
pub type LocalId = u32;

/// A graph-structure partition identifier.
pub type PartitionId = u32;

/// A version number for a partition under the evolving-graph snapshot store.
///
/// Version 0 is the base graph; each [`crate::snapshot::GraphDelta`] that
/// touches a partition bumps that partition's version.
pub type VersionId = u32;

/// An edge weight.
///
/// PageRank ignores weights; SSSP interprets them as distances; SSWP as
/// capacities.  Generators default to weight `1.0` unless asked otherwise.
pub type Weight = f32;

/// Sentinel meaning "no partition".
pub const NO_PARTITION: PartitionId = PartitionId::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_distinct_from_real_partitions() {
        assert_ne!(NO_PARTITION, 0);
        assert_eq!(NO_PARTITION, u32::MAX);
    }
}
