//! Whole-graph compressed-sparse-row storage.
//!
//! The engine itself never touches this type — it executes over
//! [`crate::partition::PartitionSet`] — but the partitioners, the synthetic
//! generators' statistics, and the single-threaded reference algorithms all
//! need a flat adjacency view.

use crate::edge::EdgeList;
use crate::types::{VertexId, Weight};

/// Immutable CSR adjacency (out-edges), with an optional reverse (in-edge)
/// index built on demand.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Builds the out-edge CSR from an edge list.
    ///
    /// Edges need not be pre-sorted; a counting pass orders them by source.
    pub fn from_edges(edges: &EdgeList) -> Self {
        let n = edges.num_vertices() as usize;
        let m = edges.len();
        let mut counts = vec![0u64; n + 1];
        for e in edges.edges() {
            counts[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; m];
        let mut weights = vec![0.0 as Weight; m];
        for e in edges.edges() {
            let slot = cursor[e.src as usize] as usize;
            targets[slot] = e.dst;
            weights[slot] = e.weight;
            cursor[e.src as usize] += 1;
        }
        Csr { offsets, targets, weights }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        (self.offsets.len() - 1) as VertexId
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-edge weights of `v`, parallel to [`neighbors`](Self::neighbors).
    pub fn weights(&self, v: VertexId) -> &[Weight] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// Iterates `(dst, weight)` pairs for `v`.
    pub fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// Builds the transposed CSR (in-edges become out-edges).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices() as usize;
        let mut counts = vec![0u64; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = vec![0.0 as Weight; self.targets.len()];
        for v in 0..n as VertexId {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            for i in lo..hi {
                let t = self.targets[i] as usize;
                let slot = cursor[t] as usize;
                targets[slot] = v;
                weights[slot] = self.weights[i];
                cursor[t] += 1;
            }
        }
        Csr { offsets, targets, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
    }

    #[test]
    fn builds_correct_adjacency() {
        let csr = Csr::from_edges(&diamond());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[3]);
        assert_eq!(csr.neighbors(3), &[] as &[VertexId]);
        assert_eq!(csr.out_degree(0), 2);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let el = EdgeList::from_edges(
            vec![
                crate::edge::Edge::unit(2, 0),
                crate::edge::Edge::unit(0, 1),
                crate::edge::Edge::unit(2, 1),
            ],
            3,
        );
        let csr = Csr::from_edges(&el);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.neighbors(0), &[1]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let csr = Csr::from_edges(&diamond());
        let t = csr.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert_eq!(t.num_edges(), csr.num_edges());
    }

    #[test]
    fn weights_follow_edges_through_transpose() {
        let el = GraphBuilder::new(3)
            .weighted_edge(0, 1, 2.5)
            .weighted_edge(2, 1, 7.0)
            .build();
        let csr = Csr::from_edges(&el);
        let t = csr.transpose();
        let from1: Vec<(VertexId, Weight)> = t.edges_of(1).collect();
        assert!(from1.contains(&(0, 2.5)));
        assert!(from1.contains(&(2, 7.0)));
    }
}
