//! Degree-distribution and partition-quality statistics used by the
//! experiment harness (Table 1 reproduction) and the scheduler tests.

use crate::edge::EdgeList;
use crate::partition::PartitionSet;

/// Summary statistics for an edge list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex universe size.
    pub num_vertices: u64,
    /// Edge count.
    pub num_edges: u64,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Fraction of vertices with zero total degree.
    pub isolated_fraction: f64,
    /// Gini coefficient of the out-degree distribution (0 = uniform,
    /// → 1 = fully skewed): a scalar proxy for power-law skew.
    pub degree_gini: f64,
}

/// Computes [`GraphStats`] for an edge list.
pub fn graph_stats(edges: &EdgeList) -> GraphStats {
    let n = edges.num_vertices() as u64;
    let m = edges.len() as u64;
    let out = edges.out_degrees();
    let inn = edges.in_degrees();
    let max_out = out.iter().copied().max().unwrap_or(0);
    let isolated = out
        .iter()
        .zip(&inn)
        .filter(|(o, i)| **o == 0 && **i == 0)
        .count() as f64;
    GraphStats {
        num_vertices: n,
        num_edges: m,
        avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_out_degree: max_out,
        isolated_fraction: if n == 0 { 0.0 } else { isolated / n as f64 },
        degree_gini: gini(&out),
    }
}

/// Gini coefficient of a non-negative integer distribution.
pub fn gini(values: &[u32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.iter().map(|&v| v as u64).collect();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n - 1.0) * v as f64;
    }
    weighted / (n * total as f64)
}

/// Edge-balance quality of a partitioning: `max partition edges / mean`.
/// 1.0 is perfectly balanced.
pub fn edge_balance(parts: &PartitionSet) -> f64 {
    let sizes: Vec<usize> = parts.partitions().iter().map(|p| p.num_edges()).collect();
    let max = sizes.iter().copied().max().unwrap_or(0) as f64;
    let mean = parts.num_edges() as f64 / parts.num_partitions().max(1) as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::vertex_cut::VertexCutPartitioner;
    use crate::Partitioner;

    #[test]
    fn stats_on_path() {
        let s = graph_stats(&generate::path(5));
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.isolated_fraction, 0.0);
    }

    #[test]
    fn gini_zero_for_uniform() {
        assert!(gini(&[3, 3, 3, 3]).abs() < 1e-9);
    }

    #[test]
    fn gini_high_for_skewed() {
        let mut v = vec![0u32; 99];
        v.push(1000);
        assert!(gini(&v) > 0.9);
    }

    #[test]
    fn gini_empty_and_zero_safe() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn rmat_more_skewed_than_uniform() {
        let r = graph_stats(&generate::rmat(10, 8, generate::RmatParams::default(), 1));
        let u = graph_stats(&generate::erdos_renyi(1024, 8192, 1));
        assert!(r.degree_gini > u.degree_gini);
    }

    #[test]
    fn isolated_fraction_counts_unused_ids() {
        let el = crate::EdgeList::from_edges(vec![crate::Edge::unit(0, 1)], 10);
        let s = graph_stats(&el);
        assert!((s.isolated_fraction - 0.8).abs() < 1e-9);
    }

    #[test]
    fn vertex_cut_is_balanced() {
        let el = generate::rmat(10, 8, generate::RmatParams::default(), 5);
        let ps = VertexCutPartitioner::new(16).partition(&el);
        assert!(edge_balance(&ps) < 1.01);
    }
}
