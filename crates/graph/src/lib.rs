//! Graph substrate for the CGraph reproduction.
//!
//! This crate provides everything below the execution engine:
//!
//! * [`Edge`] / [`EdgeList`] — weighted directed edges and bulk edge storage.
//! * [`Csr`] — a whole-graph compressed-sparse-row view used by the
//!   partitioners and by single-threaded reference algorithms.
//! * [`Partition`] / [`PartitionSet`] — the vertex-cut partitioned
//!   representation the CGraph engine executes over.  Each partition owns an
//!   equal share of the edges and a bidirectional local CSR; vertices
//!   spanning partitions have one *master* replica and any number of
//!   *mirror* replicas (paper §3.2.1, Fig. 4).
//! * [`vertex_cut`] / [`core_subgraph`] — the two partitioning strategies
//!   (plain equal-edge vertex cut, and the paper's core-subgraph packing
//!   from §3.3).
//! * [`generate`] — deterministic synthetic graph generators (R-MAT,
//!   Erdős–Rényi, grids, …) plus the scaled-down stand-ins for the paper's
//!   Table 1 datasets.
//! * [`io`] — plain-text and binary edge-list round-tripping.
//! * [`obs`] — the [`StoreObserver`] hook trait the snapshot store and
//!   WAL report into (implemented by the engine's tracing layer).
//! * [`fault`] — the store-side half of the shared fault plane: the
//!   [`FaultInjector`] hook the store and WAL notify at every durable
//!   I/O boundary, plus the file fault harness (failpoint writers,
//!   truncate/flip mutators) the crash-recovery suites drive.
//! * [`snapshot`] — the incremental snapshot store for evolving graphs
//!   (paper §3.2.1, Fig. 5).
//! * [`wal`] — the append-only, CRC-checksummed segment format that makes
//!   the snapshot store durable and crash-recoverable.
//!
//! # Examples
//!
//! ```
//! use cgraph_graph::{generate, vertex_cut::VertexCutPartitioner, Partitioner};
//!
//! let edges = generate::rmat(10, 8, generate::RmatParams::default(), 42);
//! let parts = VertexCutPartitioner::new(16).partition(&edges);
//! assert_eq!(parts.num_partitions(), 16);
//! assert_eq!(parts.num_edges(), edges.len() as u64);
//! ```

pub mod builder;
pub mod core_subgraph;
pub mod csr;
pub mod edge;
pub mod fault;
pub mod generate;
pub mod io;
pub mod obs;
pub mod partition;
pub mod snapshot;
pub mod stats;
pub mod types;
pub mod vertex_cut;
pub mod wal;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use edge::{Edge, EdgeList};
pub use fault::{FaultInjector, StoreFaultBoundary};
pub use obs::StoreObserver;
pub use partition::{Partition, PartitionSet, VertexMeta};
pub use snapshot::{
    CompactionPolicy, FootprintProfile, GraphDelta, GraphView, PlacementStats, ShardCapacity,
    ShardPlacement, ShardedSnapshotStore, SnapshotShard, SnapshotStore,
};
pub use types::{LocalId, PartitionId, VersionId, VertexId, Weight, NO_PARTITION};
pub use wal::{SegmentId, StoreError};

/// A strategy that turns an edge list into a [`PartitionSet`].
///
/// Both the plain equal-edge vertex cut
/// ([`vertex_cut::VertexCutPartitioner`]) and the core-subgraph packing
/// partitioner ([`core_subgraph::CoreSubgraphPartitioner`]) implement this.
pub trait Partitioner {
    /// Splits `edges` into partitions and builds the replica tables.
    fn partition(&self, edges: &EdgeList) -> PartitionSet;

    /// A short human-readable name for reports and benchmarks.
    fn name(&self) -> &'static str;
}
