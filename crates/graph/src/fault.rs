//! The store-side half of the shared fault plane.
//!
//! Fault injection in this workspace lives in two layers.  This module
//! is the lower one: everything the *graph* crate needs to model I/O
//! failure without depending on the engine above it.
//!
//! * [`FaultInjector`] — the runtime hook the snapshot store and WAL
//!   notify at every durable I/O boundary (appends, fsyncs, spilled-
//!   payload rehydration, apply rebuilds).  It mirrors
//!   [`crate::obs::StoreObserver`]: one `Option<Arc<dyn FaultInjector>>`
//!   per store, every call site one branch on an always-`None` option
//!   when no injector is attached (the default).  The engine's
//!   `FaultPlane` (`cgraph_core::fault`) implements this trait; tests
//!   can implement it directly.
//! * The *file* fault harness ([`FaultPlan`], [`FaultyFile`],
//!   [`truncate_at`], [`flip_bit`], [`file_len`]) — programmed
//!   failpoint writers and post-hoc file mutators for crash and
//!   corruption testing, promoted here from `wal::fault` so crash tests
//!   and runtime injection share one module.
//!
//! # Fail-open semantics
//!
//! Store boundaries are notification-only: the injector is told an
//! operation happened (and deterministically decides whether it *would*
//! have faulted, accounting retries and modeled latency), but the
//! operation itself always proceeds.  Read paths
//! ([`GraphView::partition`](crate::GraphView::partition)) are
//! infallible by contract, and failing an apply mid-mutation would risk
//! an inconsistent in-memory index — permanent WAL faults model
//! *crashes*, which the recovery suite covers with the file harness
//! below.  The fallible boundary with typed errors and quarantine is
//! the engine's shard fetch, which lives above this crate.
//!
//! # Threading
//!
//! Appends, fsyncs, and apply rebuilds fire on the thread calling
//! [`ShardedSnapshotStore::apply`](crate::snapshot::ShardedSnapshotStore::apply)
//! and are serial per store.  [`StoreFaultBoundary::Rehydrate`] fires on
//! whatever thread faults a spilled payload back in — implementations
//! must be `Send + Sync` and key decisions on the stable `(shard, key)`
//! coordinates, never on call order.

use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Which store-side I/O boundary a [`FaultInjector`] notification
/// came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreFaultBoundary {
    /// A WAL segment append (store-level manifest when `shard` is
    /// `None`).
    WalAppend,
    /// A WAL segment fsync that actually reached the disk (clean
    /// segments are skipped, exactly like the observer's fsync count).
    WalFsync,
    /// A spilled or lazily-recovered payload read back through the
    /// shard segment.  Concurrent.
    Rehydrate,
    /// One snapshot-store `apply`: record append plus current-index
    /// rebuild.
    ApplyRebuild,
}

impl StoreFaultBoundary {
    /// Stable human-readable name for reports and stats.
    pub fn name(self) -> &'static str {
        match self {
            StoreFaultBoundary::WalAppend => "wal_append",
            StoreFaultBoundary::WalFsync => "wal_fsync",
            StoreFaultBoundary::Rehydrate => "rehydrate",
            StoreFaultBoundary::ApplyRebuild => "apply_rebuild",
        }
    }
}

/// Runtime fault hook the snapshot store and WAL notify at every
/// durable I/O boundary.  Fail-open: implementations account faults,
/// retries, and modeled latency, but the notified operation always
/// proceeds (see the module docs for why).
///
/// `shard` is the segment's shard index (`None` for the store-level
/// manifest segment); `key` is a boundary-specific stable coordinate
/// (payload length for appends, payload offset for rehydrates, the
/// delta timestamp for applies) so decisions replay bit-for-bit
/// regardless of thread interleaving.
pub trait FaultInjector: Send + Sync {
    /// One store-side I/O operation is about to run.
    fn store_op(&self, boundary: StoreFaultBoundary, shard: Option<usize>, key: u64);
}

/// Crate-internal spelling of "maybe an injector": wraps
/// `Option<Arc<dyn FaultInjector>>` so holders keep deriving `Debug`
/// (mirrors [`crate::obs`]'s `ObsHandle`).
pub(crate) struct FaultHandle(Option<std::sync::Arc<dyn FaultInjector>>);

impl FaultHandle {
    pub(crate) fn none() -> FaultHandle {
        FaultHandle(None)
    }

    pub(crate) fn set(&mut self, inj: std::sync::Arc<dyn FaultInjector>) {
        self.0 = Some(inj);
    }

    /// One-branch notification: forwards to the injector when set.
    #[inline]
    pub(crate) fn notify(&self, boundary: StoreFaultBoundary, shard: Option<usize>, key: u64) {
        if let Some(inj) = self.0.as_deref() {
            inj.store_op(boundary, shard, key);
        }
    }
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "FaultHandle(set)"
        } else {
            "FaultHandle(unset)"
        })
    }
}

// ---------------------------------------------------------------------
// File fault harness (crash / corruption testing).
// ---------------------------------------------------------------------

/// What a [`FaultyFile`] does to the byte stream passing through it.
#[derive(Clone, Copy, Debug)]
pub enum FaultPlan {
    /// Silently drop every byte at stream offset `>= at` (a cached
    /// write the kernel never made durable).
    DropFrom {
        /// First stream offset dropped.
        at: u64,
    },
    /// Drop bytes at offset `>= at` and fail the *next* write after
    /// the cut (the process died mid-append).
    TruncateAt {
        /// First stream offset cut.
        at: u64,
    },
    /// Flip bit `bit` of the byte at stream offset `at` (media bit
    /// rot).
    FlipBitAt {
        /// Stream offset of the corrupted byte.
        at: u64,
        /// Which bit (0–7) flips.
        bit: u8,
    },
}

/// A `Write` wrapper with one programmed failpoint, for unit-testing
/// the frame codec against dropped, truncated, and bit-flipped
/// writes without touching a real filesystem.
#[derive(Debug)]
pub struct FaultyFile<W> {
    inner: W,
    written: u64,
    plan: FaultPlan,
    tripped: bool,
}

impl<W: Write> FaultyFile<W> {
    /// Wraps `inner` with the given failpoint.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FaultyFile { inner, written: 0, plan, tripped: false }
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Whether the failpoint has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }
}

impl<W: Write> Write for FaultyFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.written;
        self.written += buf.len() as u64;
        match self.plan {
            FaultPlan::DropFrom { at } | FaultPlan::TruncateAt { at } => {
                let fail_after = matches!(self.plan, FaultPlan::TruncateAt { .. });
                if start >= at {
                    if fail_after && self.tripped {
                        return Err(io::Error::other("faulty file: torn off"));
                    }
                    self.tripped = true;
                    return Ok(buf.len());
                }
                let keep = ((at - start) as usize).min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                if keep < buf.len() {
                    self.tripped = true;
                }
                Ok(buf.len())
            }
            FaultPlan::FlipBitAt { at, bit } => {
                if start <= at && at < start + buf.len() as u64 {
                    let mut owned = buf.to_vec();
                    owned[(at - start) as usize] ^= 1 << (bit & 7);
                    self.tripped = true;
                    self.inner.write_all(&owned)?;
                } else {
                    self.inner.write_all(buf)?;
                }
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Truncates the file at `path` to `len` bytes (simulated kill
/// point: everything after `len` was never made durable).
pub fn truncate_at(path: &Path, len: u64) -> io::Result<()> {
    OpenOptions::new().write(true).open(path)?.set_len(len)
}

/// Flips bit `bit` of the byte at `offset` in the file at `path`
/// (simulated media corruption).
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit & 7);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

/// File length in bytes.
pub fn file_len(path: &Path) -> io::Result<u64> {
    Ok(std::fs::metadata(path)?.len())
}
