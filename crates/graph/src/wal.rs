//! Append-only, CRC-checksummed segment files: the durability layer
//! under [`crate::snapshot::ShardedSnapshotStore`] and the serve-loop
//! completion journal.
//!
//! # Layout
//!
//! A durable store directory holds one write-once `MANIFEST` (store
//! configuration + format version), one write-once `base.seg` (the base
//! [`crate::partition::PartitionSet`]), one `store.seg` (the vertex-level
//! commit log), and one `shard-N.seg` per shard (that shard's
//! partition-level delta chain).  Every file is a *segment*: a fixed
//! header followed by length-prefixed frames.
//!
//! ```text
//! segment  := header frame*
//! header   := magic "CGWL" (4) | format version u32-le (4)
//! frame    := len u32-le | hcrc u32-le | pcrc u32-le | payload (len bytes)
//!             hcrc = crc32(len-le bytes)   -- guards the length field
//!             pcrc = crc32(payload)        -- guards the payload
//! payload  := kind u8 | kind-specific body (see `crate::snapshot`)
//! ```
//!
//! The separate header CRC means a corrupted *length* field is detected
//! as corruption rather than silently misdirecting the scan; the payload
//! CRC catches bit rot in the body.
//!
//! # Torn-tail policy
//!
//! A crash mid-append leaves a prefix of the final frame.  On scan, a
//! frame whose header or payload extends past end-of-file is a **torn
//! tail**: the scan stops, reports the clean length, and recovery
//! truncates the segment there — the log is exactly the committed
//! prefix.  Anything else malformed — a bad header CRC, a complete
//! frame whose payload CRC mismatches — is **mid-log corruption**:
//! the scan refuses with a typed [`StoreError::Corruption`], never a
//! panic, because silently replaying past a bad record would fabricate
//! state (the log is only as trustworthy as its weakest frame).
//!
//! [`scan_segment`] reads and verifies every payload up front.
//! [`FrameCursor`] is the streaming alternative: it walks frame
//! *headers* (which is all torn-tail detection and frame-boundary
//! recovery need, since the header CRC vouches every length field) and
//! leaves payload bytes on disk unless the caller pulls them — store
//! recovery uses it on shard segments so payloads the checkpoint
//! policy keeps lazy are never read, checksummed, or decoded at open,
//! making recovery I/O O(post-checkpoint tail) instead of O(chain).
//! An unread payload carries exactly the trust of a spilled one: it
//! verifies when a historical walk actually decodes it.
//!
//! # Fsync points
//!
//! `persist_to` syncs every created segment and the directory once.
//! Each `apply` then appends its shard frames, the store-level commit
//! frame, and any checkpoint/spill frames, and finally syncs every
//! dirty shard segment *before* the store segment — so a store-level
//! commit frame on disk implies its shard frames are too.  Recovery
//! reconciles the remaining crash window (shard frames without a
//! commit frame) by truncating the uncommitted suffix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::fault::{FaultHandle, FaultInjector, StoreFaultBoundary};
use crate::obs::{ObsHandle, StoreObserver};
use crate::partition::Partition;
use crate::snapshot::SnapshotError;

/// On-disk format version stamped into every segment header and the
/// manifest.  Bump on any incompatible layout change; `open` refuses a
/// mismatch with [`StoreError::VersionMismatch`].
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: [u8; 4] = *b"CGWL";

/// Bytes of the segment header (magic + format version).
pub const SEG_HEADER_LEN: u64 = 8;

/// Bytes of a frame header (`len | hcrc | pcrc`).
pub const FRAME_HEADER_LEN: u64 = 12;

// Frame payload kinds.  The store-specific bodies are encoded and
// decoded by `crate::snapshot`; the serve journal uses `K_SERVE_DONE`.
pub(crate) const K_MANIFEST: u8 = 1;
pub(crate) const K_BASE_META: u8 = 2;
pub(crate) const K_BASE_PART: u8 = 3;
pub(crate) const K_APPLY: u8 = 4;
pub(crate) const K_VERTEX_CP: u8 = 5;
pub(crate) const K_SPILL: u8 = 6;
pub(crate) const K_SHARD_REC: u8 = 7;
pub(crate) const K_SHARD_CP: u8 = 8;
/// One completed serve-loop job (public: `core`'s journal reuses the
/// frame codec).
pub const K_SERVE_DONE: u8 = 9;

/// Which segment file an error refers to (kept `Copy` so error paths
/// never allocate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentId {
    /// The write-once `MANIFEST`.
    Manifest,
    /// The write-once `base.seg` (base partition set).
    Base,
    /// The vertex-level commit log `store.seg`.
    Store,
    /// One shard's chain `shard-N.seg`.
    Shard(u32),
    /// A serve-loop completion journal.
    Journal,
}

impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentId::Manifest => write!(f, "MANIFEST"),
            SegmentId::Base => write!(f, "base.seg"),
            SegmentId::Store => write!(f, "store.seg"),
            SegmentId::Shard(s) => write!(f, "shard-{s}.seg"),
            SegmentId::Journal => write!(f, "journal.seg"),
        }
    }
}

/// Errors surfaced by the durable store: recovery, durable `apply`/
/// `compact`, and the serve journal.  Semantic apply failures stay
/// [`SnapshotError`]s, wrapped in [`StoreError::Snapshot`]; everything
/// else is a log-integrity or I/O fault.  In-memory stores construct
/// only the allocation-free variants.
#[derive(Debug)]
pub enum StoreError {
    /// A semantic apply failure (bad delta), unchanged from the
    /// in-memory store.
    Snapshot(SnapshotError),
    /// A frame strictly before the log tail failed its CRC or decoded
    /// inconsistently: replaying past it would fabricate state, so
    /// recovery refuses.
    Corruption {
        /// Segment the bad frame lives in.
        segment: SegmentId,
        /// Byte offset of the bad frame (or field) in that segment.
        offset: u64,
        /// What check failed.
        detail: &'static str,
    },
    /// A segment is too short to hold its mandatory structure (header,
    /// or a write-once segment's frames) — distinct from a tolerated
    /// torn *tail*, which recovery silently truncates.
    Truncated {
        /// The short segment.
        segment: SegmentId,
        /// Its observed length in bytes.
        len: u64,
    },
    /// The on-disk format version is not the one this build writes.
    VersionMismatch {
        /// Version found on disk.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// An underlying filesystem error.
    Io(io::Error),
    /// A fan-out worker thread panicked mid-apply; the store refused to
    /// install a partial result.
    WorkerPanic(&'static str),
}

impl PartialEq for StoreError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (StoreError::Snapshot(a), StoreError::Snapshot(b)) => a == b,
            (
                StoreError::Corruption { segment, offset, detail },
                StoreError::Corruption { segment: s2, offset: o2, detail: d2 },
            ) => segment == s2 && offset == o2 && detail == d2,
            (
                StoreError::Truncated { segment, len },
                StoreError::Truncated { segment: s2, len: l2 },
            ) => segment == s2 && len == l2,
            (
                StoreError::VersionMismatch { found, supported },
                StoreError::VersionMismatch { found: f2, supported: s2 },
            ) => found == f2 && supported == s2,
            (StoreError::Io(a), StoreError::Io(b)) => a.kind() == b.kind(),
            (StoreError::WorkerPanic(a), StoreError::WorkerPanic(b)) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Snapshot(e) => write!(f, "{e}"),
            StoreError::Corruption { segment, offset, detail } => {
                write!(f, "corrupt frame in {segment} at offset {offset}: {detail}")
            }
            StoreError::Truncated { segment, len } => {
                write!(f, "{segment} truncated to {len} bytes")
            }
            StoreError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "log format version {found}, this build supports {supported}"
                )
            }
            StoreError::Io(e) => write!(f, "log i/o error: {e}"),
            StoreError::WorkerPanic(what) => write!(f, "worker panicked during {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Snapshot(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — implemented in-repo; no external
// crates.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

// Slice-by-8 companion tables: CRC_TABLES[k][b] advances the CRC of
// byte `b` through `k` further zero bytes, letting the hot loop fold
// 8 input bytes per iteration instead of 1.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    t[0] = CRC_TABLE;
    let mut i = 0;
    while i < 256 {
        let mut c = t[0][i];
        let mut k = 1;
        while k < 8 {
            c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
            t[k][i] = c;
            k += 1;
        }
        i += 1;
    }
    t
};

/// IEEE CRC32 of `bytes` (slice-by-8: segment scans are CRC-bound).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Little-endian wire helpers.
// ---------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A bounds-checked little-endian reader over one frame payload.  Every
/// short read is a typed [`StoreError::Corruption`] carrying the
/// segment and frame offset, never a panic.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    segment: SegmentId,
    /// Segment offset of `buf[0]` (for error reporting).
    base: u64,
}

impl<'a> WireReader<'a> {
    /// Wraps `buf`, which starts at byte `base` of `segment`.
    pub fn new(buf: &'a [u8], segment: SegmentId, base: u64) -> Self {
        WireReader { buf, pos: 0, segment, base }
    }

    /// The corruption error for the current position.
    pub fn corrupt(&self, detail: &'static str) -> StoreError {
        StoreError::Corruption {
            segment: self.segment,
            offset: self.base + self.pos as u64,
            detail,
        }
    }

    /// Current offset within the payload.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(self.corrupt("payload shorter than its encoding claims"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `f64` (bit pattern).
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32` length field, sanity-bounded by the bytes actually
    /// remaining divided by `min_elem_bytes` (so a corrupt length can't
    /// drive a huge allocation).
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(self.corrupt("length field exceeds remaining payload"));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Segment writer and scanner.
// ---------------------------------------------------------------------

/// Append handle for one segment file.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    segment: SegmentId,
    len: u64,
    dirty: bool,
}

impl SegmentWriter {
    /// Creates a fresh segment (truncating any existing file) and writes
    /// its header.
    pub fn create(path: &Path, segment: SegmentId) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&SEG_MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(SegmentWriter { file, segment, len: SEG_HEADER_LEN, dirty: true })
    }

    /// Opens an existing segment for appending, truncating it to
    /// `clean_len` first (discarding any torn or uncommitted tail the
    /// scan rejected).
    pub fn open_clean(path: &Path, segment: SegmentId, clean_len: u64) -> Result<Self, StoreError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(clean_len)?;
        Ok(SegmentWriter { file, segment, len: clean_len, dirty: true })
    }

    /// The segment this writer appends to.
    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// Current segment length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment holds only its header.
    pub fn is_empty(&self) -> bool {
        self.len <= SEG_HEADER_LEN
    }

    /// Appends one frame; returns the segment offset of the payload's
    /// first byte.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame over 4 GiB"))?;
        let len_le = len.to_le_bytes();
        let mut header = [0u8; FRAME_HEADER_LEN as usize];
        header[..4].copy_from_slice(&len_le);
        header[4..8].copy_from_slice(&crc32(&len_le).to_le_bytes());
        header[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&header)?;
        self.file.write_all(payload)?;
        let payload_offset = self.len + FRAME_HEADER_LEN;
        self.len += FRAME_HEADER_LEN + payload.len() as u64;
        self.dirty = true;
        Ok(payload_offset)
    }

    /// Whether frames were appended since the last [`sync`](Self::sync).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Flushes appended frames to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }
}

/// One frame read back by [`scan_segment`].
#[derive(Debug)]
pub struct Frame {
    /// The payload bytes (CRC-verified).
    pub payload: Vec<u8>,
    /// Segment offset of the payload's first byte.
    pub payload_offset: u64,
    /// Segment offset one past the frame's last byte.
    pub end_offset: u64,
}

impl Frame {
    /// The payload's kind byte (first byte; every kind's body follows).
    pub fn kind(&self) -> u8 {
        self.payload.first().copied().unwrap_or(0)
    }

    /// A reader over the body (everything after the kind byte).
    pub fn body(&self, segment: SegmentId) -> WireReader<'_> {
        WireReader::new(&self.payload[1..], segment, self.payload_offset + 1)
    }
}

/// A scanned segment: the valid frame prefix plus where it ends.
#[derive(Debug)]
pub struct ScannedSegment {
    /// Every CRC-verified frame, in append order.
    pub frames: Vec<Frame>,
    /// Length of the valid prefix; recovery truncates the file here
    /// when `torn` (or cuts further after cross-file reconciliation).
    pub clean_len: u64,
    /// Whether a torn tail frame was dropped.
    pub torn: bool,
}

/// Reads and CRC-verifies every frame of the segment at `path`.
///
/// A frame extending past end-of-file is a torn tail: the scan stops
/// cleanly (`torn = true`).  A bad header CRC, a bad payload CRC on a
/// *complete* frame, a bad magic, or a missing header is refused with a
/// typed error (see the module docs for the policy).
pub fn scan_segment(path: &Path, segment: SegmentId) -> Result<ScannedSegment, StoreError> {
    let mut cur = FrameCursor::open(path, segment)?;
    let mut frames = Vec::new();
    while let Some(head) = cur.next_frame()? {
        frames.push(Frame {
            payload: cur.read_payload(&head)?,
            payload_offset: head.payload_offset,
            end_offset: head.end_offset,
        });
    }
    Ok(ScannedSegment { frames, clean_len: cur.clean_len(), torn: cur.torn() })
}

/// Boundaries of one frame located by a [`FrameCursor`] walk; the
/// payload has not been read or verified yet.
#[derive(Clone, Copy, Debug)]
pub struct FrameHead {
    /// Segment offset of the frame header.
    pub header_offset: u64,
    /// Segment offset of the payload's first byte.
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Segment offset one past the frame's last byte.
    pub end_offset: u64,
    /// Stored payload CRC, checked by [`FrameCursor::read_payload`].
    pcrc: u32,
}

/// A streaming, header-verifying walk over a segment's frames.
///
/// Frame boundaries and the torn-tail cut are exactly those of
/// [`scan_segment`] (the header CRC vouches every length field), but
/// payload bytes stay on disk: a caller can stream selected fields with
/// the `u8`/`u32`/`u64` readers, [`skip`](Self::skip) spans it does not
/// need, or pull (and CRC-verify) a whole payload with
/// [`read_payload`](Self::read_payload) — seeking backwards to revisit
/// a frame is allowed.  Store recovery leans on this to scan shard
/// segments without touching the partition payloads the checkpoint
/// policy keeps lazy.
#[derive(Debug)]
pub struct FrameCursor {
    file: BufReader<File>,
    segment: SegmentId,
    /// Stream position (mirrors the buffered file cursor).
    pos: u64,
    file_len: u64,
    /// Header offset of the next unvisited frame.
    next_header: u64,
    torn: bool,
    done: bool,
}

impl FrameCursor {
    /// Opens the segment at `path`, validating its header.
    pub fn open(path: &Path, segment: SegmentId) -> Result<Self, StoreError> {
        let f = File::open(path)?;
        let file_len = f.metadata()?.len();
        let mut file = BufReader::new(f);
        if file_len < SEG_HEADER_LEN {
            return Err(StoreError::Truncated { segment, len: file_len });
        }
        let mut hdr = [0u8; SEG_HEADER_LEN as usize];
        file.read_exact(&mut hdr)?;
        if hdr[..4] != SEG_MAGIC {
            return Err(StoreError::Corruption { segment, offset: 0, detail: "bad segment magic" });
        }
        let version = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::VersionMismatch { found: version, supported: FORMAT_VERSION });
        }
        Ok(FrameCursor {
            file,
            segment,
            pos: SEG_HEADER_LEN,
            file_len,
            next_header: SEG_HEADER_LEN,
            torn: false,
            done: false,
        })
    }

    fn seek_to(&mut self, target: u64) -> Result<(), StoreError> {
        if target != self.pos {
            self.file.seek_relative(target as i64 - self.pos as i64)?;
            self.pos = target;
        }
        Ok(())
    }

    /// Advances to the next frame, verifying its header CRC.  Returns
    /// `None` at the clean end of the log *or* at a torn tail (query
    /// [`torn`](Self::torn)); a corrupt header is a typed error.
    pub fn next_frame(&mut self) -> Result<Option<FrameHead>, StoreError> {
        if self.done {
            return Ok(None);
        }
        if self.next_header == self.file_len {
            self.done = true;
            return Ok(None);
        }
        if self.file_len - self.next_header < FRAME_HEADER_LEN {
            // Torn mid-header.
            self.torn = true;
            self.done = true;
            return Ok(None);
        }
        self.seek_to(self.next_header)?;
        let mut hdr = [0u8; FRAME_HEADER_LEN as usize];
        self.file.read_exact(&mut hdr)?;
        self.pos += FRAME_HEADER_LEN;
        let len_le: [u8; 4] = hdr[0..4].try_into().expect("4 bytes");
        if crc32(&len_le) != u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes")) {
            return Err(StoreError::Corruption {
                segment: self.segment,
                offset: self.next_header,
                detail: "frame length checksum mismatch",
            });
        }
        let len = u32::from_le_bytes(len_le);
        let start = self.next_header + FRAME_HEADER_LEN;
        if self.file_len - start < len as u64 {
            // Torn mid-payload (the header CRC vouches the length field,
            // so the frame really does extend past EOF).
            self.torn = true;
            self.done = true;
            return Ok(None);
        }
        let head = FrameHead {
            header_offset: self.next_header,
            payload_offset: start,
            payload_len: len,
            end_offset: start + len as u64,
            pcrc: u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes")),
        };
        self.next_header = head.end_offset;
        Ok(Some(head))
    }

    /// Whether the walk ended at a torn tail frame.
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// Length of the valid frame prefix walked so far (see
    /// [`ScannedSegment::clean_len`]).
    pub fn clean_len(&self) -> u64 {
        self.next_header
    }

    /// Current stream offset within the segment.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// The corruption error for segment offset `at`.
    pub fn corrupt_at(&self, at: u64, detail: &'static str) -> StoreError {
        StoreError::Corruption { segment: self.segment, offset: at, detail }
    }

    /// Reads `frame`'s full payload — seeking back if the caller already
    /// streamed past it — and checks the payload CRC.
    pub fn read_payload(&mut self, frame: &FrameHead) -> Result<Vec<u8>, StoreError> {
        self.seek_to(frame.payload_offset)?;
        let mut payload = vec![0u8; frame.payload_len as usize];
        self.file.read_exact(&mut payload)?;
        self.pos += frame.payload_len as u64;
        if crc32(&payload) != frame.pcrc {
            return Err(self.corrupt_at(frame.header_offset, "frame payload checksum mismatch"));
        }
        Ok(payload)
    }

    /// Skips `n` bytes without reading them.
    pub fn skip(&mut self, n: u64) -> Result<(), StoreError> {
        self.seek_to(self.pos + n)
    }

    fn read_arr<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let mut b = [0u8; N];
        self.file.read_exact(&mut b)?;
        self.pos += N as u64;
        Ok(b)
    }

    /// Streams one byte at the cursor.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.read_arr::<1>()?[0])
    }

    /// Streams a little-endian `u32` at the cursor.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.read_arr::<4>()?))
    }

    /// Streams a little-endian `u64` at the cursor.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.read_arr::<8>()?))
    }
}

// ---------------------------------------------------------------------
// The store's write-ahead handle.
// ---------------------------------------------------------------------

/// Location of one partition payload inside a shard segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PayloadLoc {
    pub shard: u32,
    pub offset: u64,
    pub len: u32,
}

/// The open durable state of a [`crate::snapshot::ShardedSnapshotStore`]:
/// one append handle per segment plus per-shard read handles for
/// rehydrating spilled or lazily-recovered payloads.
#[derive(Debug)]
pub(crate) struct StoreWal {
    dir: PathBuf,
    store: SegmentWriter,
    shards: Vec<SegmentWriter>,
    readers: Vec<Mutex<File>>,
    /// A deferred write error (from a context that could not propagate,
    /// e.g. the `with_capacity` builder): surfaced by the next durable
    /// operation.
    poison: Option<String>,
    /// Observability hook: appends, fsyncs, and rehydration reads
    /// report here when set.  `None` (the default) costs one branch
    /// per durable operation.
    observer: ObsHandle,
    /// Fault-plane hook: every durable boundary notifies it (fail-open;
    /// see [`crate::fault`]).  Same one-branch default as the observer.
    faults: FaultHandle,
}

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

pub(crate) fn base_path(dir: &Path) -> PathBuf {
    dir.join("base.seg")
}

pub(crate) fn store_path(dir: &Path) -> PathBuf {
    dir.join("store.seg")
}

pub(crate) fn shard_path(dir: &Path, s: usize) -> PathBuf {
    dir.join(format!("shard-{s}.seg"))
}

impl StoreWal {
    /// Creates a fresh store directory: manifest, base segment, and
    /// empty store/shard segments, all synced (including the directory).
    pub(crate) fn create(
        dir: &Path,
        shards: usize,
        manifest_payload: &[u8],
        base_frames: &[Vec<u8>],
    ) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        let mut mf = SegmentWriter::create(&manifest_path(dir), SegmentId::Manifest)?;
        mf.append(manifest_payload)?;
        mf.sync()?;
        let mut base = SegmentWriter::create(&base_path(dir), SegmentId::Base)?;
        for f in base_frames {
            base.append(f)?;
        }
        base.sync()?;
        let mut store = SegmentWriter::create(&store_path(dir), SegmentId::Store)?;
        store.sync()?;
        let mut shard_writers = Vec::with_capacity(shards);
        for s in 0..shards {
            let mut w = SegmentWriter::create(&shard_path(dir, s), SegmentId::Shard(s as u32))?;
            w.sync()?;
            shard_writers.push(w);
        }
        // Sync the directory so the file names themselves are durable.
        File::open(dir)?.sync_all()?;
        Self::attach(dir.to_path_buf(), store, shard_writers)
    }

    /// Re-attaches to an existing directory after recovery decided the
    /// clean length of every appendable segment.
    pub(crate) fn open_clean(
        dir: PathBuf,
        store_clean: u64,
        shard_clean: &[u64],
    ) -> Result<Self, StoreError> {
        let store = SegmentWriter::open_clean(&store_path(&dir), SegmentId::Store, store_clean)?;
        let mut shard_writers = Vec::with_capacity(shard_clean.len());
        for (s, &clean) in shard_clean.iter().enumerate() {
            shard_writers.push(SegmentWriter::open_clean(
                &shard_path(&dir, s),
                SegmentId::Shard(s as u32),
                clean,
            )?);
        }
        Self::attach(dir, store, shard_writers)
    }

    fn attach(
        dir: PathBuf,
        store: SegmentWriter,
        shards: Vec<SegmentWriter>,
    ) -> Result<Self, StoreError> {
        let mut readers = Vec::with_capacity(shards.len());
        for s in 0..shards.len() {
            readers.push(Mutex::new(File::open(shard_path(&dir, s))?));
        }
        Ok(StoreWal {
            dir,
            store,
            shards,
            readers,
            poison: None,
            observer: ObsHandle::none(),
            faults: FaultHandle::none(),
        })
    }

    /// Attaches the observability hook; durable operations from here on
    /// report append bytes, fsync timings, and rehydration reads.
    pub(crate) fn set_observer(&mut self, obs: Arc<dyn StoreObserver>) {
        self.observer.set(obs);
    }

    /// Attaches the fault-plane hook; every durable boundary notifies
    /// it from here on (fail-open, see [`crate::fault`]).
    pub(crate) fn set_faults(&mut self, inj: Arc<dyn FaultInjector>) {
        self.faults.set(inj);
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records a deferred error; [`check`](Self::check) surfaces it.
    pub(crate) fn poison(&mut self, e: &StoreError) {
        if self.poison.is_none() {
            self.poison = Some(e.to_string());
        }
    }

    /// Fails if a previous durable write error was deferred.
    pub(crate) fn check(&self) -> Result<(), StoreError> {
        match &self.poison {
            Some(msg) => Err(StoreError::Io(io::Error::other(msg.clone()))),
            None => Ok(()),
        }
    }

    /// Appends a frame to the store-level segment; returns the payload
    /// offset.
    pub(crate) fn append_store(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        self.faults
            .notify(StoreFaultBoundary::WalAppend, None, payload.len() as u64);
        let t0 = self.observer.get().map(|_| Instant::now());
        let off = self.store.append(payload)?;
        if let (Some(obs), Some(t0)) = (self.observer.get(), t0) {
            obs.wal_append(None, payload.len() as u64, t0.elapsed().as_micros() as u64);
        }
        Ok(off)
    }

    /// Appends a frame to shard `s`'s segment; returns the payload
    /// offset.
    pub(crate) fn append_shard(&mut self, s: usize, payload: &[u8]) -> Result<u64, StoreError> {
        self.faults
            .notify(StoreFaultBoundary::WalAppend, Some(s), payload.len() as u64);
        let t0 = self.observer.get().map(|_| Instant::now());
        let off = self.shards[s].append(payload)?;
        if let (Some(obs), Some(t0)) = (self.observer.get(), t0) {
            obs.wal_append(
                Some(s),
                payload.len() as u64,
                t0.elapsed().as_micros() as u64,
            );
        }
        Ok(off)
    }

    /// Syncs every dirty shard segment, then the store segment — the
    /// ordering that makes a durable commit frame imply durable shard
    /// frames.
    pub(crate) fn sync_dirty(&mut self) -> Result<(), StoreError> {
        for (s, w) in self.shards.iter_mut().enumerate() {
            // `sync` is a no-op on clean segments; only real fsyncs
            // report (matching the fsync *count* dashboards watch).
            if w.is_dirty() {
                self.faults.notify(StoreFaultBoundary::WalFsync, Some(s), 0);
            }
            let t0 = (self.observer.get().is_some() && w.is_dirty()).then(Instant::now);
            w.sync()?;
            if let (Some(obs), Some(t0)) = (self.observer.get(), t0) {
                obs.wal_fsync(Some(s), t0.elapsed().as_micros() as u64);
            }
        }
        if self.store.is_dirty() {
            self.faults.notify(StoreFaultBoundary::WalFsync, None, 0);
        }
        let t0 = (self.observer.get().is_some() && self.store.is_dirty()).then(Instant::now);
        self.store.sync()?;
        if let (Some(obs), Some(t0)) = (self.observer.get(), t0) {
            obs.wal_fsync(None, t0.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// Reads back and decodes one partition payload (read-through
    /// rehydration of a spilled or lazily-recovered record).  The frame
    /// was CRC-verified when the segment was scanned, so this is a raw
    /// positioned read.
    pub(crate) fn read_partition(&self, loc: PayloadLoc) -> Result<Partition, StoreError> {
        self.faults.notify(
            StoreFaultBoundary::Rehydrate,
            Some(loc.shard as usize),
            loc.offset,
        );
        let t0 = self.observer.get().map(|_| Instant::now());
        let mut buf = vec![0u8; loc.len as usize];
        {
            let mut f = self.readers[loc.shard as usize]
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            f.seek(SeekFrom::Start(loc.offset))?;
            f.read_exact(&mut buf)?;
        }
        let mut r = WireReader::new(&buf, SegmentId::Shard(loc.shard), loc.offset);
        let part = Partition::decode(&mut r)?;
        if let (Some(obs), Some(t0)) = (self.observer.get(), t0) {
            obs.rehydrate(
                loc.shard as usize,
                loc.len as u64,
                t0.elapsed().as_micros() as u64,
            );
        }
        Ok(part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{self, FaultPlan, FaultyFile};
    use std::io::Write;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cgraph-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("seg");
        let mut w = SegmentWriter::create(&path, SegmentId::Store).unwrap();
        let off_a = w.append(b"\x04hello").unwrap();
        let off_b = w.append(b"\x04").unwrap();
        w.append(&[]).unwrap();
        w.sync().unwrap();
        assert_eq!(off_a, SEG_HEADER_LEN + FRAME_HEADER_LEN);
        assert!(off_b > off_a);
        let scan = scan_segment(&path, SegmentId::Store).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert!(!scan.torn);
        assert_eq!(scan.clean_len, w.len());
        assert_eq!(scan.frames[0].payload, b"\x04hello");
        assert_eq!(scan.frames[0].payload_offset, off_a);
        assert_eq!(scan.frames[0].kind(), K_APPLY);
        assert_eq!(scan.frames[2].payload, b"");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let dir = temp_dir("torn");
        let path = dir.join("seg");
        let mut w = SegmentWriter::create(&path, SegmentId::Store).unwrap();
        w.append(b"\x04first").unwrap();
        let clean = w.len();
        w.append(b"\x04second-frame-payload").unwrap();
        w.sync().unwrap();
        let full = fault::file_len(&path).unwrap();
        // Any cut strictly inside the second frame must scan as one
        // clean frame plus a torn tail ending at `clean`.  Descending so
        // each `set_len` shrinks (growing would pad with zero bytes).
        for cut in (clean + 1..full).rev() {
            fault::truncate_at(&path, cut).unwrap();
            let scan = scan_segment(&path, SegmentId::Store).unwrap();
            assert!(scan.torn, "cut {cut}");
            assert_eq!(scan.frames.len(), 1, "cut {cut}");
            assert_eq!(scan.clean_len, clean, "cut {cut}");
        }
        // Cutting exactly at the frame boundary is a clean log.
        fault::truncate_at(&path, clean).unwrap();
        let scan = scan_segment(&path, SegmentId::Store).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.frames.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_bit_flip_is_corruption_not_panic() {
        let dir = temp_dir("flip");
        let path = dir.join("seg");
        let mut w = SegmentWriter::create(&path, SegmentId::Shard(3)).unwrap();
        w.append(b"\x07abcdefgh").unwrap();
        w.append(b"\x07tail").unwrap();
        w.sync().unwrap();
        // Flip a payload bit of the FIRST frame (mid-log): corruption.
        let payload_off = SEG_HEADER_LEN + FRAME_HEADER_LEN + 2;
        fault::flip_bit(&path, payload_off, 0).unwrap();
        let err = scan_segment(&path, SegmentId::Shard(3)).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Corruption { segment: SegmentId::Shard(3), .. }
            ),
            "{err:?}"
        );
        // Flip it back; flip a bit in the first frame's LENGTH field:
        // still corruption (the header CRC guards the length).
        fault::flip_bit(&path, payload_off, 0).unwrap();
        fault::flip_bit(&path, SEG_HEADER_LEN, 1).unwrap();
        let err = scan_segment(&path, SegmentId::Shard(3)).unwrap_err();
        assert!(matches!(err, StoreError::Corruption { .. }), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let dir = temp_dir("version");
        let path = dir.join("seg");
        SegmentWriter::create(&path, SegmentId::Store).unwrap();
        // Bump the on-disk version byte.
        fault::flip_bit(&path, 4, 1).unwrap();
        let err = scan_segment(&path, SegmentId::Store).unwrap_err();
        assert_eq!(
            err,
            StoreError::VersionMismatch { found: FORMAT_VERSION ^ 2, supported: FORMAT_VERSION }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_segment_is_truncated_error() {
        let dir = temp_dir("short");
        let path = dir.join("seg");
        fs::write(&path, b"CGW").unwrap();
        let err = scan_segment(&path, SegmentId::Base).unwrap_err();
        assert_eq!(
            err,
            StoreError::Truncated { segment: SegmentId::Base, len: 3 }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// The failpoint writer reproduces the three fault shapes on an
    /// in-memory sink: dropped tails scan torn, flipped bits scan
    /// corrupt.
    #[test]
    fn faulty_file_drops_truncates_and_flips() {
        let frame = |payload: &[u8]| {
            let len = (payload.len() as u32).to_le_bytes();
            let mut f = Vec::new();
            f.extend_from_slice(&len);
            f.extend_from_slice(&crc32(&len).to_le_bytes());
            f.extend_from_slice(&crc32(payload).to_le_bytes());
            f.extend_from_slice(payload);
            f
        };
        let header = {
            let mut h = SEG_MAGIC.to_vec();
            h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            h
        };
        let write_through = |plan: FaultPlan| {
            let mut w = FaultyFile::new(Vec::new(), plan);
            w.write_all(&header).unwrap();
            w.write_all(&frame(b"\x04one")).unwrap();
            w.write_all(&frame(b"\x04two")).unwrap();
            (w.tripped(), w.into_inner())
        };
        let dir = temp_dir("faulty");
        let path = dir.join("seg");
        // Drop from the middle of frame two: torn tail.
        let cut = (header.len() + frame(b"\x04one").len() + 5) as u64;
        let (tripped, bytes) = write_through(FaultPlan::DropFrom { at: cut });
        assert!(tripped);
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path, SegmentId::Store).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.frames.len(), 1);
        // Flip a bit inside frame one's payload: corruption.
        let at = (header.len() + FRAME_HEADER_LEN as usize + 1) as u64;
        let (tripped, bytes) = write_through(FaultPlan::FlipBitAt { at, bit: 3 });
        assert!(tripped);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            scan_segment(&path, SegmentId::Store),
            Err(StoreError::Corruption { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
