//! Edge-list I/O: whitespace-separated text and a compact binary format.
//!
//! The text format is line-oriented `src dst [weight]`, compatible with the
//! SNAP / LAW edge lists the paper's datasets ship as; `#`-prefixed lines
//! are comments.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edge::{Edge, EdgeList};
use crate::types::VertexId;

/// Magic bytes identifying the binary format ("CGRB" + version 1).
const BINARY_MAGIC: [u8; 5] = *b"CGRB\x01";

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line or record, with its 1-based position.
    Parse { line: usize, message: String },
    /// The binary header did not match.
    BadMagic,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            IoError::BadMagic => write!(f, "not a CGraph binary edge list"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a text edge list from `reader`.
pub fn read_text<R: Read>(reader: R) -> Result<EdgeList, IoError> {
    let buf = BufReader::new(reader);
    let mut edges = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src: VertexId = parse_field(it.next(), idx, "missing src")?;
        let dst: VertexId = parse_field(it.next(), idx, "missing dst")?;
        let weight = match it.next() {
            Some(w) => w.parse::<f32>().map_err(|e| IoError::Parse {
                line: idx + 1,
                message: format!("bad weight: {e}"),
            })?,
            None => 1.0,
        };
        edges.push(Edge::weighted(src, dst, weight));
    }
    Ok(EdgeList::from_edges(edges, 0))
}

fn parse_field(field: Option<&str>, idx: usize, missing: &str) -> Result<VertexId, IoError> {
    let s = field.ok_or_else(|| IoError::Parse { line: idx + 1, message: missing.to_string() })?;
    s.parse::<VertexId>()
        .map_err(|e| IoError::Parse { line: idx + 1, message: format!("bad vertex id {s:?}: {e}") })
}

/// Loads a text edge list from a file path.
pub fn load_text<P: AsRef<Path>>(path: P) -> Result<EdgeList, IoError> {
    read_text(File::open(path)?)
}

/// Writes a text edge list (weights included when not `1.0`).
pub fn write_text<W: Write>(edges: &EdgeList, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# cgraph edge list: {} vertices", edges.num_vertices())?;
    for e in edges.edges() {
        if (e.weight - 1.0).abs() < f32::EPSILON {
            writeln!(w, "{} {}", e.src, e.dst)?;
        } else {
            writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Saves a text edge list to a file path.
pub fn save_text<P: AsRef<Path>>(edges: &EdgeList, path: P) -> Result<(), IoError> {
    write_text(edges, File::create(path)?)
}

/// Writes the compact binary format (little-endian, fixed-width records).
pub fn write_binary<W: Write>(edges: &EdgeList, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&edges.num_vertices().to_le_bytes())?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    for e in edges.edges() {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the compact binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<EdgeList, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if magic != BINARY_MAGIC {
        return Err(IoError::BadMagic);
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4)?;
    let num_vertices = VertexId::from_le_bytes(b4);
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8);
    let mut edges = Vec::with_capacity(m as usize);
    for i in 0..m {
        let mut rec = [0u8; 12];
        r.read_exact(&mut rec).map_err(|e| IoError::Parse {
            line: i as usize + 1,
            message: format!("truncated record: {e}"),
        })?;
        edges.push(Edge::weighted(
            VertexId::from_le_bytes(rec[0..4].try_into().expect("slice length 4")),
            VertexId::from_le_bytes(rec[4..8].try_into().expect("slice length 4")),
            f32::from_le_bytes(rec[8..12].try_into().expect("slice length 4")),
        ));
    }
    Ok(EdgeList::from_edges(edges, num_vertices))
}

/// Saves the binary format to a file path.
pub fn save_binary<P: AsRef<Path>>(edges: &EdgeList, path: P) -> Result<(), IoError> {
    write_binary(edges, File::create(path)?)
}

/// Loads the binary format from a file path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<EdgeList, IoError> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> EdgeList {
        GraphBuilder::new(5)
            .weighted_edge(0, 1, 1.0)
            .weighted_edge(1, 2, 2.5)
            .weighted_edge(4, 0, 1.0)
            .build()
    }

    #[test]
    fn text_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_text(&el, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
    }

    #[test]
    fn text_parses_comments_and_default_weight() {
        let input = "# header\n0 1\n\n2 3 4.5\n";
        let el = read_text(input.as_bytes()).unwrap();
        assert_eq!(el.len(), 2);
        assert_eq!(el.edges()[0].weight, 1.0);
        assert_eq!(el.edges()[1].weight, 4.5);
    }

    #[test]
    fn text_reports_bad_lines() {
        let err = read_text("0 x\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn text_reports_missing_dst() {
        assert!(read_text("42\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back.edges(), el.edges());
        assert_eq!(back.num_vertices(), el.num_vertices());
    }

    #[test]
    fn binary_rejects_garbage() {
        let err = read_binary(&b"NOTCG...."[..]).unwrap_err();
        assert!(matches!(err, IoError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation() {
        let el = sample();
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cgraph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.bin");
        let el = sample();
        save_binary(&el, &p).unwrap();
        let back = load_binary(&p).unwrap();
        assert_eq!(back.edges(), el.edges());
        std::fs::remove_file(&p).ok();
    }
}
