//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on Twitter, Friendster, uk2007, uk-union and
//! hyperlink14 (Table 1) — hundreds of gigabytes of proprietary-hosted web
//! crawls.  These generators produce seeded, reproducible stand-ins: R-MAT
//! graphs share the power-law degree skew that drives the paper's partition
//! popularity and convergence effects, at sizes that keep the whole
//! evaluation runnable on one machine (see `Dataset`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edge::{Edge, EdgeList};
use crate::types::VertexId;

/// R-MAT quadrant probabilities.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (hubs attach to hubs).
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    /// The Graph500 defaults `(0.57, 0.19, 0.19, 0.05)`.
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19 }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and
/// `edge_factor * 2^scale` edges (weights uniform in `[1, 10)`).
///
/// Self loops are redirected and duplicates kept (real web crawls contain
/// parallel links too); callers wanting a simple graph can
/// [`EdgeList::sort_and_dedup`].
pub fn rmat(scale: u32, edge_factor: u32, params: RmatParams, seed: u64) -> EdgeList {
    let n: u64 = 1 << scale;
    let m = n * edge_factor as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut src, mut dst) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (si, di) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | si;
            dst = (dst << 1) | di;
        }
        if src == dst {
            dst = (dst + 1) % n;
        }
        let w = rng.gen_range(1.0..10.0);
        edges.push(Edge::weighted(src as VertexId, dst as VertexId, w));
    }
    EdgeList::from_edges(edges, n as VertexId)
}

/// Generates a uniform random (Erdős–Rényi `G(n, m)`) graph.
pub fn erdos_renyi(n: VertexId, m: u64, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let src = rng.gen_range(0..n);
        let mut dst = rng.gen_range(0..n);
        if dst == src {
            dst = (dst + 1) % n;
        }
        let w = rng.gen_range(1.0..10.0);
        edges.push(Edge::weighted(src, dst, w));
    }
    EdgeList::from_edges(edges, n)
}

/// Generates a directed 2-D grid (`rows × cols`, edges right and down) —
/// a worst case for power-law-oriented scheduling, used in ablation tests.
pub fn grid(rows: u32, cols: u32) -> EdgeList {
    let id = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::unit(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::unit(id(r, c), id(r + 1, c)));
            }
        }
    }
    EdgeList::from_edges(edges, rows * cols)
}

/// Generates a directed path `0 -> 1 -> … -> n-1`.
pub fn path(n: VertexId) -> EdgeList {
    EdgeList::from_edges(
        (0..n.saturating_sub(1))
            .map(|i| Edge::unit(i, i + 1))
            .collect(),
        n,
    )
}

/// Generates a directed cycle over `n` vertices.
pub fn cycle(n: VertexId) -> EdgeList {
    EdgeList::from_edges((0..n).map(|i| Edge::unit(i, (i + 1) % n)).collect(), n)
}

/// Generates a star: hub `0` with spokes both ways.
pub fn star(n: VertexId) -> EdgeList {
    let mut edges = Vec::new();
    for i in 1..n {
        edges.push(Edge::unit(0, i));
        edges.push(Edge::unit(i, 0));
    }
    EdgeList::from_edges(edges, n)
}

/// The paper's Table 1 datasets, reproduced as scaled-down R-MAT graphs.
///
/// Relative size ordering matches the paper (Twitter < Friendster < uk2007
/// < uk-union < hyperlink14); absolute sizes are shrunk so the whole
/// evaluation runs on one machine, and the simulated LLC shrinks with them
/// (see `cgraph-memsim`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Stand-in for Twitter (41.7 M vertices, 1.4 B edges).
    TwitterSim,
    /// Stand-in for Friendster (65 M vertices, 1.8 B edges).
    FriendsterSim,
    /// Stand-in for uk2007 (105.9 M vertices, 3.7 B edges).
    Uk2007Sim,
    /// Stand-in for uk-union (133.6 M vertices, 5.5 B edges).
    UkUnionSim,
    /// Stand-in for hyperlink14 (1.7 B vertices, 64.4 B edges).
    Hyperlink14Sim,
}

impl Dataset {
    /// All five datasets in the paper's Table 1 order.
    pub const ALL: [Dataset; 5] = [
        Dataset::TwitterSim,
        Dataset::FriendsterSim,
        Dataset::Uk2007Sim,
        Dataset::UkUnionSim,
        Dataset::Hyperlink14Sim,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::TwitterSim => "twitter-sim",
            Dataset::FriendsterSim => "friendster-sim",
            Dataset::Uk2007Sim => "uk2007-sim",
            Dataset::UkUnionSim => "ukunion-sim",
            Dataset::Hyperlink14Sim => "hyperlink14-sim",
        }
    }

    /// `(rmat scale, edge factor)` at the given shrink level; `shrink`
    /// subtracts from the scale to cut generation time in quick runs.
    pub fn shape(self, shrink: u32) -> (u32, u32) {
        let (scale, ef): (u32, u32) = match self {
            Dataset::TwitterSim => (16, 20),
            Dataset::FriendsterSim => (17, 13),
            Dataset::Uk2007Sim => (17, 26),
            Dataset::UkUnionSim => (18, 20),
            Dataset::Hyperlink14Sim => (19, 30),
        };
        (scale.saturating_sub(shrink).max(8), ef)
    }

    /// Generates the dataset deterministically at the given shrink level.
    pub fn generate(self, shrink: u32) -> EdgeList {
        let (scale, ef) = self.shape(shrink);
        let seed = 0xC6_2A_11 + self as u64;
        rmat(scale, ef, RmatParams::default(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_size_and_determinism() {
        let a = rmat(8, 4, RmatParams::default(), 7);
        let b = rmat(8, 4, RmatParams::default(), 7);
        assert_eq!(a.len(), 4 * 256);
        assert_eq!(a.num_vertices(), 256);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn rmat_seeds_differ() {
        let a = rmat(8, 4, RmatParams::default(), 1);
        let b = rmat(8, 4, RmatParams::default(), 2);
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn rmat_is_skewed() {
        let el = rmat(10, 8, RmatParams::default(), 3);
        let deg = el.out_degrees();
        let max = *deg.iter().max().unwrap() as f64;
        let avg = el.len() as f64 / el.num_vertices() as f64;
        assert!(max > 8.0 * avg, "max {max} should dwarf avg {avg}");
    }

    #[test]
    fn rmat_has_no_self_loops() {
        let el = rmat(8, 8, RmatParams::default(), 9);
        assert!(el.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn erdos_renyi_shape() {
        let el = erdos_renyi(100, 500, 11);
        assert_eq!(el.len(), 500);
        assert!(el.num_vertices() >= 100);
        assert!(el.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn grid_edge_count() {
        let el = grid(3, 4);
        // Right edges: 3*3 = 9; down edges: 2*4 = 8.
        assert_eq!(el.len(), 17);
        assert_eq!(el.num_vertices(), 12);
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(5).len(), 4);
        assert_eq!(cycle(5).len(), 5);
        assert_eq!(star(5).len(), 8);
    }

    #[test]
    fn datasets_ordered_by_size() {
        let sizes: Vec<u64> = Dataset::ALL
            .iter()
            .map(|d| {
                let (s, ef) = d.shape(4);
                (1u64 << s) * ef as u64
            })
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "sizes must increase: {sizes:?}");
        }
    }

    #[test]
    fn dataset_generation_is_deterministic() {
        let a = Dataset::TwitterSim.generate(6);
        let b = Dataset::TwitterSim.generate(6);
        assert_eq!(a.edges(), b.edges());
    }
}
