//! Store-side observability hooks.
//!
//! The graph crate sits *below* the engine, so it cannot depend on the
//! engine's tracing subsystem (`cgraph_core::obs`).  Instead it exposes
//! this thin callback trait: every method has an empty default body, the
//! store holds an `Option<Arc<dyn StoreObserver>>`, and each call site
//! first checks `Option::is_some` — so a store without an observer (the
//! default, and every pre-observability code path) pays exactly one
//! branch on an always-`None` option and allocates nothing.
//!
//! The engine crate implements this trait on its `Observer` bridge and
//! attaches it with [`ShardedSnapshotStore::with_observer`]; anything
//! else (tests, ad-hoc tooling) can implement it directly.
//!
//! # Threading
//!
//! Most hooks fire on the thread calling [`ShardedSnapshotStore::apply`]
//! (append, fsync, spill, checkpoint) and are therefore serial per
//! store.  The exception is [`StoreObserver::rehydrate`], which fires on
//! whatever thread faults a spilled payload back in — under the
//! concurrent executor that is any `cgraph-io-N` worker.  Implementations
//! must be `Send + Sync` and treat `rehydrate` as concurrent.
//!
//! All durations are wall-clock microseconds measured at the call site;
//! none of the hooks feed back into store behaviour, so an observer can
//! never perturb apply results, spill decisions, or recovery.
//!
//! [`ShardedSnapshotStore::apply`]: crate::snapshot::ShardedSnapshotStore::apply
//! [`ShardedSnapshotStore::with_observer`]: crate::snapshot::ShardedSnapshotStore::with_observer

/// Crate-internal spelling of "maybe an observer": wraps
/// `Option<Arc<dyn StoreObserver>>` so holders keep deriving `Debug`
/// (trait objects have no `Debug` of their own).
pub(crate) struct ObsHandle(Option<std::sync::Arc<dyn StoreObserver>>);

impl ObsHandle {
    pub(crate) fn none() -> ObsHandle {
        ObsHandle(None)
    }

    pub(crate) fn set(&mut self, obs: std::sync::Arc<dyn StoreObserver>) {
        self.0 = Some(obs);
    }

    pub(crate) fn get(&self) -> Option<&dyn StoreObserver> {
        self.0.as_deref()
    }

    pub(crate) fn clone_arc(&self) -> Option<std::sync::Arc<dyn StoreObserver>> {
        self.0.clone()
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObsHandle(set)"
        } else {
            "ObsHandle(unset)"
        })
    }
}

/// Callback surface the snapshot store and WAL report into.
///
/// Every method defaults to a no-op; implement only what you consume.
/// Shards are identified by their index in the store's shard vector.
pub trait StoreObserver: Send + Sync {
    /// One `apply` finished: the delta record landed in `shard` and
    /// `partitions` current-index entries were rebuilt in `micros`
    /// wall microseconds.
    fn apply_rebuild(&self, shard: usize, version: u64, partitions: usize, micros: u64) {
        let _ = (shard, version, partitions, micros);
    }

    /// `bytes` of payload were appended to a WAL segment (`shard =
    /// None` for the store-level manifest segment) in `micros`.
    fn wal_append(&self, shard: Option<usize>, bytes: u64, micros: u64) {
        let _ = (shard, bytes, micros);
    }

    /// One segment fsync (`shard = None` for the manifest) completed in
    /// `micros`.
    fn wal_fsync(&self, shard: Option<usize>, micros: u64) {
        let _ = (shard, micros);
    }

    /// Capacity enforcement dropped a resident payload: `bytes` left
    /// memory for the shard's WAL segment.
    fn spill(&self, shard: usize, bytes: u64) {
        let _ = (shard, bytes);
    }

    /// A spilled payload was faulted back in from the WAL (`bytes`
    /// resident again after `micros` of read + decode).  Concurrent.
    fn rehydrate(&self, shard: usize, bytes: u64, micros: u64) {
        let _ = (shard, bytes, micros);
    }

    /// A compaction checkpoint walked `records` live records into a
    /// fresh baseline in `micros`.
    fn checkpoint_walk(&self, records: u64, micros: u64) {
        let _ = (records, micros);
    }

    /// Crash recovery replayed `frames` WAL frames (`bytes` of payload)
    /// in `micros`.
    fn recovery_replay(&self, frames: u64, bytes: u64, micros: u64) {
        let _ = (frames, bytes, micros);
    }

    /// Post-apply footprint report for one shard: bytes resident in
    /// memory vs. spilled to the WAL.
    fn footprint(&self, shard: usize, resident_bytes: u64, spilled_bytes: u64) {
        let _ = (shard, resident_bytes, spilled_bytes);
    }
}
