//! Weighted directed edges and bulk edge-list storage.

use crate::types::{VertexId, Weight};

/// A single weighted directed edge `src -> dst`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (distance for SSSP, capacity for SSWP, ignored by
    /// PageRank/BFS/WCC).
    pub weight: Weight,
}

impl Edge {
    /// Creates an edge with weight `1.0`.
    pub fn unit(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst, weight: 1.0 }
    }

    /// Creates a weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }

    /// Returns the edge with `src` and `dst` swapped.
    pub fn reversed(self) -> Self {
        Edge { src: self.dst, dst: self.src, weight: self.weight }
    }
}

/// A bulk list of edges plus the vertex-id universe they live in.
///
/// The vertex count is tracked explicitly so that graphs with isolated
/// vertices (no incident edges) round-trip correctly through partitioning
/// and I/O.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    edges: Vec<Edge>,
    num_vertices: VertexId,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: VertexId) -> Self {
        EdgeList { edges: Vec::new(), num_vertices }
    }

    /// Builds an edge list from raw parts, growing the vertex universe to
    /// cover every endpoint.
    pub fn from_edges(edges: Vec<Edge>, num_vertices: VertexId) -> Self {
        let implied = edges
            .iter()
            .map(|e| e.src.max(e.dst).saturating_add(1))
            .max()
            .unwrap_or(0);
        EdgeList { edges, num_vertices: num_vertices.max(implied) }
    }

    /// Appends one edge, growing the vertex universe if needed.
    pub fn push(&mut self, edge: Edge) {
        self.num_vertices = self
            .num_vertices
            .max(edge.src.max(edge.dst).saturating_add(1));
        self.edges.push(edge);
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Size of the vertex universe (max endpoint + 1, or as declared).
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Immutable access to the edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable access to the edges (e.g. to assign weights after generation).
    pub fn edges_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    /// Consumes the list, returning the raw edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Sorts edges by `(src, dst)` and removes exact duplicates
    /// (keeping the first occurrence's weight).
    pub fn sort_and_dedup(&mut self) {
        self.edges.sort_by_key(|e| (e.src, e.dst));
        self.edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Returns a new list with every edge reversed (used to express
    /// backward traversal for SCC phases when a caller wants an explicit
    /// reverse graph rather than the partitions' built-in in-CSR).
    pub fn reversed(&self) -> Self {
        EdgeList {
            edges: self.edges.iter().map(|e| e.reversed()).collect(),
            num_vertices: self.num_vertices,
        }
    }

    /// Total out-degree per vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// Total in-degree per vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }
}

impl FromIterator<Edge> for EdgeList {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let edges: Vec<Edge> = iter.into_iter().collect();
        EdgeList::from_edges(edges, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_grows_vertex_universe() {
        let mut el = EdgeList::new(0);
        el.push(Edge::unit(3, 7));
        assert_eq!(el.num_vertices(), 8);
        el.push(Edge::unit(1, 2));
        assert_eq!(el.num_vertices(), 8);
    }

    #[test]
    fn from_edges_respects_declared_universe() {
        let el = EdgeList::from_edges(vec![Edge::unit(0, 1)], 10);
        assert_eq!(el.num_vertices(), 10);
    }

    #[test]
    fn sort_and_dedup_removes_duplicates_keeps_first_weight() {
        let mut el = EdgeList::from_edges(
            vec![
                Edge::weighted(1, 2, 5.0),
                Edge::weighted(0, 1, 1.0),
                Edge::weighted(1, 2, 9.0),
            ],
            0,
        );
        el.sort_and_dedup();
        assert_eq!(el.len(), 2);
        assert_eq!(el.edges()[0], Edge::weighted(0, 1, 1.0));
        assert_eq!(el.edges()[1].weight, 5.0);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let el = EdgeList::from_edges(vec![Edge::weighted(0, 1, 2.0)], 0);
        let rev = el.reversed();
        assert_eq!(rev.edges()[0], Edge::weighted(1, 0, 2.0));
    }

    #[test]
    fn degrees_count_correctly() {
        let el = EdgeList::from_edges(
            vec![Edge::unit(0, 1), Edge::unit(0, 2), Edge::unit(1, 2)],
            0,
        );
        assert_eq!(el.out_degrees(), vec![2, 1, 0]);
        assert_eq!(el.in_degrees(), vec![0, 1, 2]);
    }
}
