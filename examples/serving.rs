//! Online serving: a diurnal arrival stream through the admission-
//! controlled serve loop.
//!
//! Generates a multi-tenant job trace (`cgraph::trace`), compresses it
//! onto the serving clock, and serves it three ways: FIFO admission
//! (window 0), version-keyed wave batching at two windows, and the
//! streaming-baseline FIFO denominator.  Wider admission windows trade
//! queue latency for aligned starts — jobs admitted in one wave share
//! every partition load from round one, which is where the spared-loads
//! column comes from.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use cgraph::algos::trace_arrivals;
use cgraph::baselines::{FifoServe, StreamConfig, StreamEngine};
use cgraph::core::{Engine, EngineConfig, ServeConfig, ServeLoop, ServeReport};
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::trace::{generate_trace, TraceConfig};

/// Virtual seconds per trace hour: the week-scale trace compressed onto
/// the millisecond-scale modeled execution clock.
const SECONDS_PER_HOUR: f64 = 0.02;

fn row(label: &str, r: &ServeReport) -> String {
    format!(
        "{label:>14} {:>5} {:>8.1} {:>12.2} {:>12.2} {:>11.2} {:>11.2} {:>6} {:>7} {:>7}",
        r.jobs.len(),
        r.throughput(),
        r.mean_wait() * 1e3,
        r.mean_latency() * 1e3,
        r.latency_percentile(99.0) * 1e3,
        r.makespan * 1e3,
        r.waves,
        r.rounds,
        r.loads,
    )
}

fn main() {
    let edges = generate::rmat(11, 8, generate::RmatParams::default(), 55);
    let parts = VertexCutPartitioner::new(24).partition(&edges);
    let store = Arc::new(SnapshotStore::new(parts));

    let trace = generate_trace(&TraceConfig {
        hours: 6,
        base_rate: 2.0,
        peak_rate: 6.0,
        mean_duration: 1.0,
        seed: 7,
    });
    println!(
        "{} jobs over {} trace hours ({} virtual ms)\n",
        trace.len(),
        6,
        6.0 * SECONDS_PER_HOUR * 1e3
    );
    println!(
        "{:>14} {:>5} {:>8} {:>12} {:>12} {:>11} {:>11} {:>6} {:>7} {:>7}",
        "admission",
        "jobs",
        "jobs/s",
        "mean wait ms",
        "mean lat ms",
        "p99 lat ms",
        "makespan ms",
        "waves",
        "rounds",
        "loads"
    );

    let mut fifo_loads = 0;
    let mut widest: Option<ServeReport> = None;
    for window in [0.0, 0.01, 0.05] {
        let engine = Engine::new(Arc::clone(&store), EngineConfig::default());
        let mut serve = ServeLoop::new(
            engine,
            ServeConfig { admission_window: window, time_scale: 1.0, ..ServeConfig::default() },
        );
        serve.offer_all(trace_arrivals(&trace, SECONDS_PER_HOUR, 64));
        let report = serve.serve();
        let label = if window == 0.0 {
            fifo_loads = report.loads;
            "FIFO (w=0)".to_string()
        } else {
            format!(
                "w={:.0}ms (-{:.0}%)",
                window * 1e3,
                (1.0 - report.loads as f64 / fifo_loads as f64) * 100.0
            )
        };
        println!("{}", row(&label, &report));
        widest = Some(report);
    }

    let stream = StreamEngine::new(Arc::clone(&store), StreamConfig::default());
    let mut baseline = FifoServe::new(stream, 1.0);
    baseline.offer_all(trace_arrivals(&trace, SECONDS_PER_HOUR, 64));
    println!("{}", row("stream-fifo", &baseline.serve()));

    // The per-job view behind the aggregates: the widest window's five
    // longest waits, straight from `ServeReport::per_job()`.
    let widest = widest.expect("the window loop served at least once");
    let mut jobs = widest.per_job();
    jobs.sort_by(|a, b| b.wait.partial_cmp(&a.wait).expect("finite waits"));
    println!(
        "\nlongest queue waits at w={:.0}ms ({}):",
        widest.admission_window * 1e3,
        if widest.completed {
            "completed"
        } else {
            "truncated"
        },
    );
    for j in jobs.iter().take(5) {
        println!(
            "  job {:>3} {:>9}  arrived {:>6.2} ms  waited {:>5.2} ms  latency {:>6.2} ms",
            j.job,
            j.name,
            j.arrival * 1e3,
            j.wait * 1e3,
            j.latency * 1e3,
        );
    }

    println!(
        "\njobs admitted in one wave start aligned and share every partition\n\
         load from round one; a wider window coalesces more arrivals per wave\n\
         (fewer loads) at the cost of queue wait (higher latency)."
    );
}
