//! Fault injection: serving a diurnal trace through a seeded chaos
//! schedule with retries, circuit breakers, shedding, and brownout.
//!
//! Builds one snapshot store and serves the same arrival trace three
//! times: clean, under a moderate transient-fault schedule (retries and
//! breakers absorb everything), and under a hostile schedule with a
//! starved retry budget (jobs quarantine, admission sheds, the loop
//! browns out — but the serve still drains and every surviving result
//! is bit-identical to the clean run).  The whole schedule is a pure
//! hash of `(seed, boundary, coordinates, attempt)`: re-running this
//! example reproduces every fault, retry, and trip exactly.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use std::sync::Arc;

use cgraph::algos::trace_arrivals;
use cgraph::core::{
    Engine, EngineConfig, FaultConfig, FaultPlane, JobOutcome, RetryPolicy, ServeConfig, ServeLoop,
    ServeReport,
};
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::trace::{generate_trace, TraceConfig};

/// Virtual seconds per trace hour (the serving-clock compression).
const SECONDS_PER_HOUR: f64 = 0.02;

/// The reproducible chaos seed: change it, get a different — equally
/// deterministic — storm.
const SEED: u64 = 0xBAD5EED;

fn serve_under(
    store: &Arc<SnapshotStore>,
    trace: &[cgraph::trace::JobSpan],
    faults: FaultConfig,
) -> (ServeReport, Arc<FaultPlane>) {
    let plane = FaultPlane::new(faults);
    let engine = Engine::new(
        Arc::clone(store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            faults: Some(Arc::clone(&plane)),
            ..EngineConfig::default()
        },
    );
    let mut serve = ServeLoop::new(
        engine,
        ServeConfig {
            admission_window: 0.01,
            time_scale: 1.0,
            // Bounded backlog: offers over this shed instead of queueing.
            max_backlog: 24,
            // Past this depth (or any quarantine) the window widens 4x.
            brownout_backlog: 12,
            ..ServeConfig::default()
        },
    );
    serve.offer_all(trace_arrivals(trace, SECONDS_PER_HOUR, 64));
    let report = serve.serve();
    (report, plane)
}

fn row(label: &str, r: &ServeReport, plane: &FaultPlane) -> String {
    let s = plane.stats();
    let done = r
        .per_job()
        .iter()
        .filter(|j| j.outcome == JobOutcome::Completed)
        .count();
    format!(
        "{label:>9} {:>5} {:>5} {:>5} {:>5} {:>8} {:>9} {:>6} {:>10.2} {:>10.2}",
        r.jobs.len(),
        done,
        r.quarantined,
        r.rejected,
        r.retries,
        s.rerouted,
        s.breaker_trips,
        r.mean_latency() * 1e3,
        r.latency_percentile(99.0) * 1e3,
    )
}

fn main() {
    let edges = generate::rmat(10, 8, generate::RmatParams::default(), 55);
    let parts = VertexCutPartitioner::new(16).partition(&edges);
    let store = Arc::new(SnapshotStore::new(parts));

    let trace = generate_trace(&TraceConfig {
        hours: 6,
        base_rate: 2.0,
        peak_rate: 6.0,
        mean_duration: 1.0,
        seed: 7,
    });
    println!("{} jobs, chaos seed {SEED:#x}\n", trace.len());
    println!(
        "{:>9} {:>5} {:>5} {:>5} {:>5} {:>8} {:>9} {:>6} {:>10} {:>10}",
        "run", "jobs", "done", "quar", "shed", "retries", "rerouted", "trips", "lat ms", "p99 ms",
    );

    // Clean control: an all-zero config makes an inert plane the engine
    // strips at construction — the true no-faults figure.
    let (clean, clean_plane) = serve_under(&store, &trace, FaultConfig::default());
    println!("{}", row("clean", &clean, &clean_plane));

    // Moderate chaos: 8% transient fetch faults plus latency spikes.
    // Four retry attempts with exponential backoff absorb essentially
    // everything; consecutive-fault lanes trip their breaker and reroute
    // at disk-re-fetch pricing until the half-open probe recovers.
    let moderate = FaultConfig {
        seed: SEED,
        fetch_rate: 0.08,
        spike_rate: 0.08,
        spike_seconds: 2e-3,
        ..FaultConfig::default()
    };
    let (faulted, faulted_plane) = serve_under(&store, &trace, moderate);
    println!("{}", row("moderate", &faulted, &faulted_plane));

    // Hostile chaos: a third of fetches fail, some permanently, and the
    // retry budget is starved — quarantines and shedding kick in, the
    // admission window browns out, and the loop still drains.
    let hostile = FaultConfig {
        seed: SEED,
        fetch_rate: 0.35,
        permanent_rate: 0.05,
        spike_rate: 0.2,
        spike_seconds: 5e-3,
        retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
        ..FaultConfig::default()
    };
    let (degraded, degraded_plane) = serve_under(&store, &trace, hostile);
    println!("{}", row("hostile", &degraded, &degraded_plane));

    // The degradation contract: offers are never lost, only completed,
    // quarantined, or shed.
    for (label, r) in [
        ("clean", &clean),
        ("moderate", &faulted),
        ("hostile", &degraded),
    ] {
        let done = r
            .per_job()
            .iter()
            .filter(|j| j.outcome == JobOutcome::Completed)
            .count() as u64;
        assert_eq!(
            done + r.quarantined + r.rejected,
            trace.len() as u64,
            "{label}: every offer must be accounted for"
        );
    }
    let s = degraded_plane.stats();
    println!(
        "\nhostile schedule: {} faults injected, {} retries, {} exhausted, \
         {} spikes, {:.1} ms modeled delay",
        s.injected,
        s.retries,
        s.exhausted,
        s.spikes,
        s.delay_micros as f64 / 1e3,
    );
    println!(
        "degradation: {} quarantined (typed), {} shed at admission, brownout widened \
         the window to keep draining",
        degraded.quarantined, degraded.rejected,
    );
    println!("\nre-run it: same seed, same storm, bit for bit.");
}
