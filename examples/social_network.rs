//! Social-network analytics service: the paper's four-job mix (PageRank,
//! SSSP, SCC, BFS) over one shared social graph, comparing CGraph against
//! the Seraph-style baseline and sequential execution.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use cgraph::algos::{run_scc, Bfs, PageRank, Sssp};
use cgraph::baselines::BaselinePreset;
use cgraph::core::{Engine, EngineConfig, JobEngine};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::memsim::HierarchyConfig;

fn hierarchy(parts: &cgraph::graph::PartitionSet) -> HierarchyConfig {
    let total: u64 = parts.partitions().iter().map(|p| p.structure_bytes()).sum();
    HierarchyConfig { cache_bytes: total / 8, memory_bytes: total * 4 }
}

/// Submits the four-job mix and runs to convergence.
fn run_mix<E: JobEngine>(engine: &mut E) -> (f64, f64) {
    let before = engine.global_metrics();
    engine.submit_program(PageRank::default());
    engine.submit_program(Sssp::new(0));
    engine.submit_program(Bfs::new(0));
    let sccs = run_scc(engine); // SCC phases run concurrently with the rest
    engine.run_jobs();
    let m = engine.global_metrics().since(&before);
    let secs = engine.cost().total_seconds(&m, engine.workers());
    let _ = sccs;
    (secs, m.cache_miss_rate())
}

fn main() {
    let edges = generate::rmat(12, 10, generate::RmatParams::default(), 99);
    let parts = VertexCutPartitioner::new(48).partition(&edges);
    let h = hierarchy(&parts);
    println!(
        "social graph: {} vertices, {} edges; simulated LLC {} KiB\n",
        parts.num_vertices(),
        parts.num_edges(),
        h.cache_bytes >> 10,
    );

    println!(
        "{:<12} {:>14} {:>14}",
        "engine", "modeled time", "LLC miss rate"
    );
    let mut cgraph_time = 0.0;
    for name in ["CGraph", "Seraph", "Sequential"] {
        let (secs, miss) = match name {
            "CGraph" => {
                let mut e = Engine::from_partitions(
                    parts.clone(),
                    EngineConfig { hierarchy: h, ..EngineConfig::default() },
                );
                let r = run_mix(&mut e);
                cgraph_time = r.0;
                r
            }
            "Seraph" => {
                let mut e = BaselinePreset::Seraph.build_static(parts.clone(), 4, h);
                run_mix(&mut e)
            }
            _ => {
                let mut e = BaselinePreset::Sequential.build_static(parts.clone(), 4, h);
                run_mix(&mut e)
            }
        };
        println!(
            "{:<12} {:>11.2} ms {:>13.1}%{}",
            name,
            secs * 1e3,
            miss * 100.0,
            if name != "CGraph" && cgraph_time > 0.0 {
                format!("   ({:.2}x CGraph)", secs / cgraph_time)
            } else {
                String::new()
            },
        );
    }

    println!("\nCGraph amortizes every shared partition load across all four jobs.");
}
