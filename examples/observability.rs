//! Observability: a fully traced serve run, exported three ways.
//!
//! Runs the diurnal arrival stream from the `serving` example with a
//! live [`Observer`](cgraph::core::Observer) attached to both layers —
//! the engine/serve loop (via `EngineConfig::observer`) and the
//! snapshot store (via the `StoreObserver` bridge) — then exports:
//!
//! * `trace.json` — Chrome `trace_event` JSON; load it in
//!   `about://tracing` or <https://ui.perfetto.dev> to see the
//!   fetch/install/trigger/push spans per thread,
//! * `trace.jsonl` — the same events one-per-line for grep/jq,
//! * `metrics.json` — the one-call registry snapshot (counters,
//!   gauges, per-stage histograms with p50/p90/p99),
//!
//! and prints the Prometheus text page plus a short digest.  The
//! observer is strictly read-only: rerun with `Observer::disabled()`
//! (or no observer at all) and every result bit is identical.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use cgraph::algos::trace_arrivals;
use cgraph::core::{Engine, EngineConfig, Observer, ServeConfig, ServeLoop};
use cgraph::graph::snapshot::SnapshotStore;
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};
use cgraph::trace::{generate_trace, TraceConfig};

/// Virtual seconds per trace hour (same clock as the `serving` example).
const SECONDS_PER_HOUR: f64 = 0.02;

fn main() {
    let obs = Observer::enabled();

    let edges = generate::rmat(11, 8, generate::RmatParams::default(), 55);
    let parts = VertexCutPartitioner::new(24).partition(&edges);
    let store = Arc::new(SnapshotStore::new(parts).with_observer(obs.store_observer()));

    let trace = generate_trace(&TraceConfig {
        hours: 6,
        base_rate: 2.0,
        peak_rate: 6.0,
        mean_duration: 1.0,
        seed: 7,
    });

    let engine = Engine::new(
        Arc::clone(&store),
        EngineConfig {
            workers: 2,
            wavefront: 4,
            io_workers: 2,
            observer: Some(Arc::clone(&obs)),
            ..EngineConfig::default()
        },
    );
    let mut serve = ServeLoop::new(
        engine,
        ServeConfig { admission_window: 0.01, time_scale: 1.0, ..ServeConfig::default() },
    );
    serve.offer_all(trace_arrivals(&trace, SECONDS_PER_HOUR, 64));
    let report = serve.serve();
    println!(
        "served {} jobs in {} rounds / {} waves ({} partition loads)",
        report.jobs.len(),
        report.rounds,
        report.waves,
        report.loads,
    );

    // Drain every per-thread ring into one timestamp-sorted dump and
    // export it both ways.
    let dump = obs.dump();
    std::fs::write("trace.json", dump.chrome_json()).expect("write trace.json");
    std::fs::write("trace.jsonl", dump.jsonl()).expect("write trace.jsonl");
    std::fs::write("metrics.json", obs.registry().metrics_json()).expect("write metrics.json");
    println!(
        "captured {} events across {} threads ({} dropped to ring overflow)",
        dump.events.len(),
        dump.threads.len(),
        obs.dropped_events(),
    );
    println!(
        "wrote trace.json + trace.jsonl (load trace.json in about://tracing \
         or ui.perfetto.dev) and metrics.json\n"
    );

    println!("--- prometheus text page ---");
    print!("{}", obs.registry().prometheus_text());

    let hist = |name: &str| obs.registry().histogram(name);
    let waits = hist("serve_queue_wait_us");
    let installs = hist("install_us");
    println!("\n--- digest ---");
    println!(
        "queue wait: {} samples, p50 {} us, p99 {} us, max {} us",
        waits.count(),
        waits.quantile(0.5),
        waits.quantile(0.99),
        waits.max(),
    );
    println!(
        "slot install: {} samples, p50 {} us, p99 {} us",
        installs.count(),
        installs.quantile(0.5),
        installs.quantile(0.99),
    );
}
