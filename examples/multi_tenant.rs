//! Multi-tenant analytics platform: sixteen concurrent jobs — four
//! rotations of the paper's mix — sharing one graph.  Demonstrates job
//! batching (more jobs than workers), straggler splitting, and the spared
//! data accesses that grow with concurrency (the paper's Fig. 19 effect).
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use cgraph::algos::{Bfs, PageRank, Sssp, Wcc};
use cgraph::baselines::BaselinePreset;
use cgraph::core::{Engine, EngineConfig, JobEngine};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, PartitionSet, Partitioner};
use cgraph::memsim::HierarchyConfig;

fn submit_rotations<E: JobEngine>(engine: &mut E, rotations: u32) {
    for r in 0..rotations {
        engine.submit_program(PageRank::default());
        engine.submit_program(Sssp::new(r));
        engine.submit_program(Wcc);
        engine.submit_program(Bfs::new(r + 1));
    }
}

fn total_bytes(parts: &PartitionSet) -> u64 {
    parts.partitions().iter().map(|p| p.structure_bytes()).sum()
}

fn main() {
    let edges = generate::rmat(12, 8, generate::RmatParams::default(), 55);
    let parts = VertexCutPartitioner::new(40).partition(&edges);
    let h = HierarchyConfig {
        cache_bytes: total_bytes(&parts) / 8,
        memory_bytes: total_bytes(&parts) * 4,
    };

    // Sequential baseline: the denominator for "spared accesses".
    let mut seq = BaselinePreset::Sequential.build_static(parts.clone(), 4, h);
    submit_rotations(&mut seq, 4);
    seq.run();
    let seq_bytes = seq.metrics().bytes_mem_to_cache + seq.metrics().bytes_disk_to_mem;

    println!(
        "{:>5} {:>14} {:>15} {:>16}",
        "jobs", "modeled time", "LLC miss rate", "spared accesses"
    );
    for rotations in [1u32, 2, 4] {
        let mut engine = Engine::from_partitions(
            parts.clone(),
            EngineConfig { hierarchy: h, ..EngineConfig::default() },
        );
        submit_rotations(&mut engine, rotations);
        let report = engine.run();
        // Scale the sequential volume to the same number of jobs.
        let seq_share = seq_bytes as f64 * rotations as f64 / 4.0;
        let mine = (report.metrics.bytes_mem_to_cache + report.metrics.bytes_disk_to_mem) as f64;
        println!(
            "{:>5} {:>11.2} ms {:>14.1}% {:>15.1}%",
            rotations * 4,
            report.modeled_seconds * 1e3,
            report.metrics.cache_miss_rate() * 100.0,
            (1.0 - mine / seq_share) * 100.0,
        );
    }

    println!(
        "\nwith 16 jobs and 4 workers the engine processes jobs in batches of 4,\n\
         keeping each loaded structure partition pinned while private tables rotate;\n\
         more concurrency -> more sharing -> more spared accesses."
    );
}
