//! Evolving graph: jobs submitted at different times bind to different
//! snapshots, yet keep sharing the unchanged partitions (paper §3.2.1,
//! Fig. 5, and the Fig. 16 experiment regime).
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```

use std::sync::Arc;

use cgraph::algos::{Bfs, Wcc};
use cgraph::core::{Engine, EngineConfig};
use cgraph::graph::snapshot::{GraphDelta, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Edge, Partitioner};

fn main() {
    // Base graph at timestamp 0.
    let edges = generate::rmat(11, 8, generate::RmatParams::default(), 3);
    let n = edges.num_vertices();
    let parts = VertexCutPartitioner::new(24).partition(&edges);
    let mut store = SnapshotStore::new(parts);

    // Two graph updates: timestamp 10 adds fresh follow edges, timestamp 20
    // removes a few old ones.
    let adds: Vec<Edge> = (0..40)
        .map(|i| Edge::unit(i * 7 % n, (i * 13 + 1) % n))
        .collect();
    let touched = store.apply(10, &GraphDelta::adding(adds)).unwrap();
    println!("snapshot @10: re-versioned {touched} of 24 partitions");
    let removals: Vec<(u32, u32)> = store
        .base()
        .partition(0)
        .edges_global()
        .iter()
        .take(5)
        .map(|e| (e.src, e.dst))
        .collect();
    let touched = store.apply(20, &GraphDelta::removing(removals)).unwrap();
    println!("snapshot @20: re-versioned {touched} of 24 partitions");

    let store = Arc::new(store);
    let old_view = store.view_at(5);
    let new_view = store.view_at(25);
    println!(
        "views @5 and @25 still share {:.0}% of their partitions\n",
        old_view.shared_fraction(&new_view) * 100.0,
    );

    // Jobs arriving at different times see different graphs.
    let mut engine = Engine::new(Arc::clone(&store), EngineConfig::default());
    let wcc_old = engine.submit_at(Wcc, 5); // sees the base graph
    let wcc_new = engine.submit_at(Wcc, 15); // sees the added edges
    let bfs_new = engine.submit_at(Bfs::new(0), 25); // sees everything
    let report = engine.run();

    let old_labels = engine.results::<Wcc>(wcc_old).unwrap();
    let new_labels = engine.results::<Wcc>(wcc_new).unwrap();
    let comp = |labels: &[u32]| {
        let mut l: Vec<u32> = labels.to_vec();
        l.sort_unstable();
        l.dedup();
        l.len()
    };
    println!(
        "WCC components: {} @t=5  ->  {} @t=15 (new edges merged components)",
        comp(&old_labels),
        comp(&new_labels),
    );
    let reached = engine
        .results::<Bfs>(bfs_new)
        .unwrap()
        .iter()
        .filter(|&&d| d != u32::MAX)
        .count();
    println!("BFS @t=25 reaches {reached} vertices");
    println!(
        "\nall three jobs ran concurrently over {} shared partition loads \
         (miss rate {:.1}%)",
        report.loads,
        report.metrics.cache_miss_rate() * 100.0,
    );
}
