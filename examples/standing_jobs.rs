//! Standing jobs: a registered query re-emits once per snapshot
//! version, resuming each emission from the previous one's converged
//! result at O(Δ) instead of recomputing from scratch (`core::incr`).
//!
//! ```sh
//! cargo run --release --example standing_jobs
//! ```

use std::sync::Arc;

use cgraph::algos::{Bfs, Wcc};
use cgraph::core::{Engine, EngineConfig, ServeConfig, ServeLoop, Standing};
use cgraph::graph::snapshot::{GraphDelta, SnapshotStore};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Edge, Partitioner};

fn main() {
    // Base graph at timestamp 0, then three addition-only updates: the
    // monotone-safe stream shape where every resume takes the seeded
    // O(Δ) path (a removal anywhere in a range would fall back to a
    // from-scratch bind for that emission — still bit-identical).
    let edges = generate::rmat(11, 8, generate::RmatParams::default(), 7);
    let n = edges.num_vertices();
    let parts = VertexCutPartitioner::new(24).partition(&edges);
    let mut store = SnapshotStore::new(parts);
    for (i, ts) in [10u64, 20, 30].into_iter().enumerate() {
        let adds: Vec<Edge> = (0..16)
            .map(|j| {
                let k = (i * 16 + j) as u32;
                Edge::unit(
                    k.wrapping_mul(2246822519) % n,
                    k.wrapping_mul(2654435761) % n,
                )
            })
            .collect();
        let touched = store.apply(ts, &GraphDelta::adding(adds)).unwrap();
        println!("snapshot @{ts}: re-versioned {touched} of 24 partitions");
    }
    let store = Arc::new(store);

    // Register two standing programs; serving emits each once per
    // version (base + three deltas = four emissions apiece), resuming
    // from its own previous converged result.
    let mut sl = ServeLoop::new(
        Engine::new(Arc::clone(&store), EngineConfig::default()),
        ServeConfig { time_scale: 1e2, ..ServeConfig::default() },
    );
    sl.add_standing(Standing::new("standing-bfs", Bfs::new(0)).boxed());
    sl.add_standing(Standing::new("standing-wcc", Wcc).boxed());
    let report = sl.serve();
    assert!(report.completed, "standing serve drains");

    for idx in 0..sl.standing_count() {
        let runner = sl.standing(idx);
        println!(
            "{}: {} emissions, {} resumed seeded (O(Δ))",
            runner.name(),
            runner.emitted(),
            runner.seeded(),
        );
    }

    // Every emission is a first-class served job with a latency row —
    // and each one's results are bit-identical to a from-scratch bind
    // at its version (pinned exhaustively in tests/incremental.rs).
    for row in report.per_job() {
        println!(
            "  job {:>2} {:<13} arrival {:>5.1}s latency {:>6.3}s [{}]",
            row.job,
            row.name,
            row.arrival,
            row.latency,
            row.outcome.name(),
        );
    }

    let last = sl.engine().num_jobs() as u32 - 1;
    let labels = sl.engine().results::<Wcc>(last).unwrap();
    let mut roots: Vec<u32> = labels.to_vec();
    roots.sort_unstable();
    roots.dedup();
    println!(
        "head wcc emission: {} components over {n} vertices",
        roots.len()
    );
}
