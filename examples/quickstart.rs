//! Quickstart: run two concurrent jobs over one shared graph.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cgraph::algos::{Bfs, PageRank};
use cgraph::core::{Engine, EngineConfig};
use cgraph::graph::vertex_cut::VertexCutPartitioner;
use cgraph::graph::{generate, Partitioner};

fn main() {
    // 1. Generate a power-law graph (a scaled-down social network) and
    //    split it into equal-edge vertex-cut partitions.
    let edges = generate::rmat(12, 8, generate::RmatParams::default(), 7);
    let parts = VertexCutPartitioner::new(32).partition(&edges);
    println!(
        "graph: {} vertices, {} edges, {} partitions (replication x{:.2})",
        parts.num_vertices(),
        parts.num_edges(),
        parts.num_partitions(),
        parts.replication_factor(),
    );

    // 2. Submit two concurrent jobs: they share every structure-partition
    //    load through the LTP engine.
    let mut engine = Engine::from_partitions(parts, EngineConfig::default());
    let pr = engine.submit(PageRank::default());
    let bfs = engine.submit(Bfs::new(0));

    // 3. Run to convergence.
    let report = engine.run();
    println!(
        "converged in {} partition loads, modeled {:.3} ms, LLC miss rate {:.1}%",
        report.loads,
        report.modeled_seconds * 1e3,
        report.metrics.cache_miss_rate() * 100.0,
    );

    // 4. Read the results.
    let ranks = engine.results::<PageRank>(pr).expect("pagerank results");
    let hops = engine.results::<Bfs>(bfs).expect("bfs results");

    let mut top: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 PageRank vertices:");
    for (v, p) in top.iter().take(5) {
        let hop = match hops[*v] {
            u32::MAX => "unreachable".to_string(),
            h => format!("{h} hops from v0"),
        };
        println!("  v{v:<8} rank {p:.3}  ({hop})");
    }

    println!(
        "\nPageRank ran {} iterations; BFS ran {} iterations — all over one shared copy.",
        engine.job_iterations(pr),
        engine.job_iterations(bfs),
    );
}
